//! Transactions and replayable traces.
//!
//! The controller consumes a flat stream of [`Transaction`]s — bank, cell
//! address, read or write. A [`Trace`] is such a stream frozen into a value:
//! it can be generated synthetically (see [`crate::workload`]), saved to CSV,
//! reloaded, and replayed bit-identically against any controller
//! configuration, which is what makes scheme-vs-scheme comparisons fair
//! (every scheme sees the exact same traffic).
//!
//! Transactions optionally carry an **arrival timestamp** (nanoseconds from
//! the start of the run). [`Controller::run`](crate::Controller::run)
//! ignores it — serial replay is zero-queueing by construction — but the
//! event-driven [`sched`](crate::sched) frontend admits each transaction at
//! its arrival time, which is what turns a trace into an offered load. The
//! CSV dialect grows a sixth `arrival_ns` column only when a trace is timed,
//! so untimed traces round-trip through the original five-column format.
//!
//! Two on-disk formats exist. CSV is the human-readable interchange format;
//! the **binary format** ([`Trace::to_binary`]/[`Trace::from_binary`], laid
//! out in DESIGN.md §12) is the fast path: fixed-stride little-endian
//! records that a [`TraceView`] can replay **zero-copy** straight out of a
//! borrowed `&[u8]` (e.g. an mmap-ed file) without materialising a
//! `Vec<Transaction>`. Everything that replays traffic is generic over
//! [`TxnSource`], so owned traces and borrowed views drive the engines
//! through the same code path and produce bit-identical results.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use stt_array::Address;

/// What a transaction asks the controller to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Sense the stored bit and return it.
    Read,
    /// Program the given bit.
    Write(bool),
}

impl Op {
    /// `true` for [`Op::Read`].
    #[must_use]
    pub fn is_read(self) -> bool {
        matches!(self, Op::Read)
    }
}

/// One memory transaction: an operation against one cell of one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Transaction {
    /// Target bank index (`0..banks`).
    pub bank: usize,
    /// Cell address within the bank.
    pub addr: Address,
    /// The operation.
    pub op: Op,
    /// Arrival time in nanoseconds from the start of the run. `0` for
    /// untimed traces; serial replay ignores it entirely.
    pub arrival_ns: u64,
}

impl Transaction {
    /// A read of `addr` on `bank`, arriving at time zero.
    #[must_use]
    pub fn read(bank: usize, addr: Address) -> Self {
        Self {
            bank,
            addr,
            op: Op::Read,
            arrival_ns: 0,
        }
    }

    /// A write of `bit` to `addr` on `bank`, arriving at time zero.
    #[must_use]
    pub fn write(bank: usize, addr: Address, bit: bool) -> Self {
        Self {
            bank,
            addr,
            op: Op::Write(bit),
            arrival_ns: 0,
        }
    }

    /// Stamps an arrival time (nanoseconds) onto the transaction.
    #[must_use]
    pub fn at(mut self, arrival_ns: u64) -> Self {
        self.arrival_ns = arrival_ns;
        self
    }
}

/// A replayable, ordered stream of transactions.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    transactions: Vec<Transaction>,
}

/// A malformed line met while parsing a [`Trace`] from CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// What was wrong with it.
    pub kind: TraceParseErrorKind,
}

/// The ways a trace CSV record can be malformed. Each variant carries the
/// offending text verbatim, so a caller can point at the exact column
/// instead of grepping a prose message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceParseErrorKind {
    /// Wrong number of comma-separated fields (truncated or overlong row).
    FieldCount {
        /// How many fields the record actually had.
        got: usize,
    },
    /// A numeric column failed to parse.
    BadNumber {
        /// Which column (`"bank"`, `"row"`, `"col"`, `"arrival_ns"`).
        column: &'static str,
        /// The text that failed to parse.
        value: String,
    },
    /// The `op`/`bit` pair is not one of `R,` / `W,0` / `W,1`.
    BadOp {
        /// The `op` field as written.
        op: String,
        /// The `bit` field as written.
        bit: String,
    },
}

impl TraceParseErrorKind {
    /// The column the error anchors to, as named in the CSV header
    /// ([`TraceParseErrorKind::FieldCount`] has no single column and
    /// returns `None`; a bad op/bit pair anchors to `"op"`).
    #[must_use]
    pub fn column(&self) -> Option<&'static str> {
        match self {
            TraceParseErrorKind::FieldCount { .. } => None,
            TraceParseErrorKind::BadNumber { column, .. } => Some(column),
            TraceParseErrorKind::BadOp { .. } => Some("op"),
        }
    }
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: ", self.line)?;
        match &self.kind {
            TraceParseErrorKind::FieldCount { got } => {
                write!(f, "expected 5 or 6 fields, got {got}")
            }
            TraceParseErrorKind::BadNumber { column, value } => {
                write!(f, "bad {column} {value:?}")
            }
            TraceParseErrorKind::BadOp { op, bit } => {
                write!(f, "bad op/bit pair {op:?}/{bit:?}")
            }
        }
    }
}

impl std::error::Error for TraceParseError {}

impl Trace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an existing transaction list.
    #[must_use]
    pub fn from_transactions(transactions: Vec<Transaction>) -> Self {
        Self { transactions }
    }

    /// Appends a transaction.
    pub fn push(&mut self, txn: Transaction) {
        self.transactions.push(txn);
    }

    /// Number of transactions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// `true` when the trace holds no transactions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// The transactions, in replay order.
    #[must_use]
    pub fn transactions(&self) -> &[Transaction] {
        &self.transactions
    }

    /// Count of read transactions.
    #[must_use]
    pub fn reads(&self) -> usize {
        self.transactions.iter().filter(|t| t.op.is_read()).count()
    }

    /// `true` when any transaction carries a non-zero arrival time.
    #[must_use]
    pub fn is_timed(&self) -> bool {
        self.transactions.iter().any(|t| t.arrival_ns != 0)
    }

    /// Stamps Poisson (exponential-gap) arrival times onto the trace, in
    /// order: transaction `k` arrives `Exp(mean_gap_ns)` after transaction
    /// `k − 1`. Arrivals are therefore non-decreasing in trace order, which
    /// is the precondition for the FCFS-frontend ≡ serial-replay identity
    /// (see [`crate::sched`]).
    ///
    /// # Panics
    ///
    /// Panics if `mean_gap_ns` is not finite and positive.
    #[must_use]
    pub fn with_poisson_arrivals(mut self, mean_gap_ns: f64, rng: &mut StdRng) -> Self {
        assert!(
            mean_gap_ns.is_finite() && mean_gap_ns > 0.0,
            "mean inter-arrival gap must be positive, got {mean_gap_ns}"
        );
        let mut now = 0.0f64;
        for txn in &mut self.transactions {
            // Inverse-CDF exponential sample; `1 - u` keeps ln() finite.
            let u: f64 = rng.gen();
            now += -(1.0 - u).ln() * mean_gap_ns;
            txn.arrival_ns = now.round() as u64;
        }
        self
    }

    /// Serialises to the trace CSV dialect: a `bank,row,col,op,bit` header
    /// followed by one record per transaction (`op` is `R` or `W`; `bit` is
    /// empty for reads). A timed trace (see [`Trace::is_timed`]) appends an
    /// `arrival_ns` column; an untimed trace keeps the original five-column
    /// format so old files round-trip byte-identically.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let timed = self.is_timed();
        let mut out = String::from(if timed {
            "bank,row,col,op,bit,arrival_ns\n"
        } else {
            "bank,row,col,op,bit\n"
        });
        for txn in &self.transactions {
            let (op, bit) = match txn.op {
                Op::Read => ("R", String::new()),
                Op::Write(bit) => ("W", u8::from(bit).to_string()),
            };
            out.push_str(&format!(
                "{},{},{},{op},{bit}",
                txn.bank, txn.addr.row, txn.addr.col
            ));
            if timed {
                out.push_str(&format!(",{}", txn.arrival_ns));
            }
            out.push('\n');
        }
        out
    }

    /// Parses the CSV dialect written by [`Trace::to_csv`]. A leading header
    /// line is accepted and skipped; blank lines are ignored. Both formats
    /// are accepted — five fields per record (untimed; arrival defaults to
    /// zero) or six (`arrival_ns` last) — and may be mixed line by line.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceParseError`] naming the first malformed line and —
    /// via [`TraceParseErrorKind`] — the offending column and text.
    pub fn from_csv(text: &str) -> Result<Self, TraceParseError> {
        let mut transactions = Vec::new();
        for (index, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || (index == 0 && line.starts_with("bank")) {
                continue;
            }
            let err = |kind: TraceParseErrorKind| TraceParseError {
                line: index + 1,
                kind,
            };
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 5 && fields.len() != 6 {
                return Err(err(TraceParseErrorKind::FieldCount { got: fields.len() }));
            }
            let parse = |field: &str, column: &'static str| {
                field.parse::<usize>().map_err(|_| {
                    err(TraceParseErrorKind::BadNumber {
                        column,
                        value: field.to_string(),
                    })
                })
            };
            let bank = parse(fields[0], "bank")?;
            let addr = Address::new(parse(fields[1], "row")?, parse(fields[2], "col")?);
            let op = match (fields[3], fields[4]) {
                ("R", "") => Op::Read,
                ("W", "0") => Op::Write(false),
                ("W", "1") => Op::Write(true),
                (op, bit) => {
                    return Err(err(TraceParseErrorKind::BadOp {
                        op: op.to_string(),
                        bit: bit.to_string(),
                    }))
                }
            };
            let arrival_ns = match fields.get(5) {
                Some(field) => field.parse::<u64>().map_err(|_| {
                    err(TraceParseErrorKind::BadNumber {
                        column: "arrival_ns",
                        value: field.to_string(),
                    })
                })?,
                None => 0,
            };
            transactions.push(Transaction {
                bank,
                addr,
                op,
                arrival_ns,
            });
        }
        Ok(Self { transactions })
    }
}

/// Read access to an ordered transaction stream.
///
/// Implemented by the owned [`Trace`] and the zero-copy [`TraceView`]; every
/// replay engine ([`Controller::run`](crate::Controller::run), the
/// [`sched`](crate::sched) frontend, the [`hierarchy`](crate::hierarchy)
/// chip) is generic over this trait, so both representations run through
/// identical code and produce bit-identical results.
pub trait TxnSource {
    /// Number of transactions in the stream.
    fn len(&self) -> usize;

    /// The `index`-th transaction, decoded by value.
    ///
    /// # Panics
    /// Panics when `index >= len()`.
    fn get(&self, index: usize) -> Transaction;

    /// `true` when the stream holds no transactions.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TxnSource for Trace {
    fn len(&self) -> usize {
        self.transactions.len()
    }

    fn get(&self, index: usize) -> Transaction {
        self.transactions[index]
    }
}

/// Binary trace magic: the first four bytes of every binary trace file.
pub const TRACE_MAGIC: [u8; 4] = *b"STTR";
/// Binary trace format version written by [`Trace::to_binary`].
pub const TRACE_BINARY_VERSION: u8 = 1;
/// Header size in bytes: magic (4) + version (1) + flags (1) + reserved (2)
/// + record count u64 LE (8).
pub const TRACE_HEADER_BYTES: usize = 16;
/// Fixed record stride in bytes: bank u32, row u32, col u32, op u8,
/// padding ×3, arrival_ns u64 — all little-endian.
pub const TRACE_RECORD_BYTES: usize = 24;

const OP_READ: u8 = 0;
const OP_WRITE_ZERO: u8 = 1;
const OP_WRITE_ONE: u8 = 2;

/// A malformed binary trace buffer. Unlike CSV parse errors these are typed
/// on the *structural* failure — a truncated header, a body that is not a
/// whole number of records, an op byte outside the encoding — because binary
/// traces are machine-written and any damage means the file, not a line, is
/// suspect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceBinaryError {
    /// Shorter than the 16-byte header.
    Truncated {
        /// Actual buffer length in bytes.
        got: usize,
    },
    /// The first four bytes are not [`TRACE_MAGIC`].
    BadMagic {
        /// The four bytes actually found.
        got: [u8; 4],
    },
    /// Unknown format version byte.
    BadVersion {
        /// The version byte actually found.
        got: u8,
    },
    /// The body is not a whole number of 24-byte records.
    Misaligned {
        /// Body length in bytes (buffer length minus the header).
        body_bytes: usize,
    },
    /// The header's record count disagrees with the body length.
    CountMismatch {
        /// Record count claimed by the header.
        header: u64,
        /// Whole records actually present in the body.
        body: usize,
    },
    /// A record's op byte is outside the `{0, 1, 2}` encoding.
    BadOp {
        /// 0-based index of the offending record.
        record: usize,
        /// The op byte actually found.
        code: u8,
    },
}

impl std::fmt::Display for TraceBinaryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceBinaryError::Truncated { got } => {
                write!(
                    f,
                    "binary trace truncated: {got} bytes < {TRACE_HEADER_BYTES}-byte header"
                )
            }
            TraceBinaryError::BadMagic { got } => {
                write!(
                    f,
                    "bad binary trace magic {got:?} (expected {TRACE_MAGIC:?})"
                )
            }
            TraceBinaryError::BadVersion { got } => {
                write!(
                    f,
                    "unsupported binary trace version {got} (expected {TRACE_BINARY_VERSION})"
                )
            }
            TraceBinaryError::Misaligned { body_bytes } => {
                write!(
                    f,
                    "binary trace body misaligned: {body_bytes} bytes is not a multiple of {TRACE_RECORD_BYTES}"
                )
            }
            TraceBinaryError::CountMismatch { header, body } => {
                write!(
                    f,
                    "binary trace header claims {header} records, body holds {body}"
                )
            }
            TraceBinaryError::BadOp { record, code } => {
                write!(f, "binary trace record {record}: bad op byte {code}")
            }
        }
    }
}

impl std::error::Error for TraceBinaryError {}

/// A zero-copy view over a binary trace buffer.
///
/// [`TraceView::new`] validates the whole buffer once — header, alignment,
/// record count, every op byte — so that [`TxnSource::get`] is an infallible
/// constant-time decode of four little-endian loads. The view borrows the
/// bytes; nothing is copied until a [`Transaction`] is decoded on demand.
///
/// ```
/// use stt_ctrl::{Trace, TraceView, Transaction, TxnSource};
/// use stt_array::Address;
///
/// let trace = Trace::from_transactions(vec![
///     Transaction::read(0, Address::new(1, 2)).at(5),
/// ]);
/// let bytes = trace.to_binary();
/// let view = TraceView::new(&bytes).unwrap();
/// assert_eq!(view.len(), 1);
/// assert_eq!(view.get(0), trace.get(0));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TraceView<'a> {
    /// Record bytes only (header stripped during validation).
    body: &'a [u8],
    len: usize,
}

impl<'a> TraceView<'a> {
    /// Validates `bytes` as a binary trace and wraps it without copying.
    ///
    /// # Errors
    /// Returns a [`TraceBinaryError`] describing the first structural
    /// problem: short buffer, wrong magic/version, a body that is not a
    /// whole number of records, a count mismatch, or an invalid op byte.
    pub fn new(bytes: &'a [u8]) -> Result<Self, TraceBinaryError> {
        if bytes.len() < TRACE_HEADER_BYTES {
            return Err(TraceBinaryError::Truncated { got: bytes.len() });
        }
        let magic: [u8; 4] = bytes[..4].try_into().expect("4-byte slice");
        if magic != TRACE_MAGIC {
            return Err(TraceBinaryError::BadMagic { got: magic });
        }
        if bytes[4] != TRACE_BINARY_VERSION {
            return Err(TraceBinaryError::BadVersion { got: bytes[4] });
        }
        let count = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice"));
        let body = &bytes[TRACE_HEADER_BYTES..];
        if !body.len().is_multiple_of(TRACE_RECORD_BYTES) {
            return Err(TraceBinaryError::Misaligned {
                body_bytes: body.len(),
            });
        }
        let records = body.len() / TRACE_RECORD_BYTES;
        if count != records as u64 {
            return Err(TraceBinaryError::CountMismatch {
                header: count,
                body: records,
            });
        }
        for record in 0..records {
            let code = body[record * TRACE_RECORD_BYTES + 12];
            if code > OP_WRITE_ONE {
                return Err(TraceBinaryError::BadOp { record, code });
            }
        }
        Ok(Self { body, len: records })
    }

    /// Iterates the transactions, decoding each on demand.
    pub fn iter(&self) -> impl Iterator<Item = Transaction> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Copies the view into an owned [`Trace`].
    #[must_use]
    pub fn to_trace(&self) -> Trace {
        Trace::from_transactions(self.iter().collect())
    }
}

impl TxnSource for TraceView<'_> {
    fn len(&self) -> usize {
        self.len
    }

    fn get(&self, index: usize) -> Transaction {
        assert!(
            index < self.len,
            "record {index} out of range ({})",
            self.len
        );
        let r = &self.body[index * TRACE_RECORD_BYTES..(index + 1) * TRACE_RECORD_BYTES];
        let word = |o: usize| u32::from_le_bytes(r[o..o + 4].try_into().expect("4-byte slice"));
        let op = match r[12] {
            OP_READ => Op::Read,
            OP_WRITE_ZERO => Op::Write(false),
            OP_WRITE_ONE => Op::Write(true),
            // `new()` validated every op byte.
            code => unreachable!("op byte {code} survived validation"),
        };
        Transaction {
            bank: word(0) as usize,
            addr: Address::new(word(4) as usize, word(8) as usize),
            op,
            arrival_ns: u64::from_le_bytes(r[16..24].try_into().expect("8-byte slice")),
        }
    }
}

impl Trace {
    /// Serialises to the fixed-stride binary format (DESIGN.md §12): a
    /// 16-byte header (magic `STTR`, version, flags, reserved, record count
    /// u64 LE) followed by one 24-byte little-endian record per transaction.
    /// The result always round-trips losslessly through
    /// [`Trace::from_binary`], timed or not.
    ///
    /// # Panics
    /// Panics when a bank, row or column index exceeds `u32::MAX` — the
    /// binary format stores them as 32-bit words, which comfortably covers
    /// every geometry the chip model can express.
    #[must_use]
    pub fn to_binary(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(TRACE_HEADER_BYTES + TRACE_RECORD_BYTES * self.len());
        out.extend_from_slice(&TRACE_MAGIC);
        out.push(TRACE_BINARY_VERSION);
        out.push(0); // flags
        out.extend_from_slice(&[0, 0]); // reserved
        out.extend_from_slice(&(self.len() as u64).to_le_bytes());
        let narrow = |value: usize, what: &str| {
            u32::try_from(value).unwrap_or_else(|_| panic!("{what} {value} exceeds u32 range"))
        };
        for txn in &self.transactions {
            out.extend_from_slice(&narrow(txn.bank, "bank").to_le_bytes());
            out.extend_from_slice(&narrow(txn.addr.row, "row").to_le_bytes());
            out.extend_from_slice(&narrow(txn.addr.col, "col").to_le_bytes());
            let op = match txn.op {
                Op::Read => OP_READ,
                Op::Write(false) => OP_WRITE_ZERO,
                Op::Write(true) => OP_WRITE_ONE,
            };
            out.extend_from_slice(&[op, 0, 0, 0]);
            out.extend_from_slice(&txn.arrival_ns.to_le_bytes());
        }
        out
    }

    /// Parses the binary format written by [`Trace::to_binary`] into an
    /// owned trace. Use [`TraceView::new`] instead to replay straight from
    /// the buffer without materialising the `Vec`.
    ///
    /// # Errors
    /// Returns a [`TraceBinaryError`] on any structural damage (see
    /// [`TraceView::new`]).
    pub fn from_binary(bytes: &[u8]) -> Result<Self, TraceBinaryError> {
        Ok(TraceView::new(bytes)?.to_trace())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace::from_transactions(vec![
            Transaction::write(0, Address::new(1, 2), true),
            Transaction::read(1, Address::new(3, 4)),
            Transaction::write(2, Address::new(0, 0), false),
            Transaction::read(0, Address::new(1, 2)),
        ])
    }

    #[test]
    fn csv_round_trips() {
        let trace = sample_trace();
        let csv = trace.to_csv();
        // Untimed traces keep the original five-column dialect.
        assert!(csv.starts_with("bank,row,col,op,bit\n"));
        assert!(!csv.contains("arrival_ns"));
        assert_eq!(Trace::from_csv(&csv).unwrap(), trace);
    }

    #[test]
    fn timed_csv_round_trips_with_arrival_column() {
        let mut trace = sample_trace();
        for (k, txn) in trace.transactions.iter_mut().enumerate() {
            txn.arrival_ns = 10 * k as u64;
        }
        let csv = trace.to_csv();
        assert!(csv.starts_with("bank,row,col,op,bit,arrival_ns\n"));
        assert_eq!(Trace::from_csv(&csv).unwrap(), trace);
    }

    #[test]
    fn untimed_rows_parse_with_arrival_zero() {
        // A six-column header over five-column records (and vice versa) is
        // tolerated; missing arrivals default to zero.
        let parsed = Trace::from_csv("bank,row,col,op,bit\n0,1,2,W,1,25\n1,3,4,R,\n").unwrap();
        assert_eq!(parsed.transactions()[0].arrival_ns, 25);
        assert_eq!(parsed.transactions()[1].arrival_ns, 0);
        assert!(parsed.is_timed());
        assert!(!sample_trace().is_timed());
    }

    #[test]
    fn non_numeric_arrival_names_line_and_column() {
        let error = Trace::from_csv("0,1,2,R,,soon\n").unwrap_err();
        assert_eq!(error.line, 1);
        assert_eq!(
            error.kind,
            TraceParseErrorKind::BadNumber {
                column: "arrival_ns",
                value: "soon".to_string(),
            }
        );
        assert_eq!(error.kind.column(), Some("arrival_ns"));
        assert_eq!(error.to_string(), "trace line 1: bad arrival_ns \"soon\"");
    }

    #[test]
    fn poisson_arrivals_are_monotone_and_deterministic() {
        use rand::SeedableRng;
        let stamp = |seed: u64| {
            sample_trace().with_poisson_arrivals(20.0, &mut StdRng::seed_from_u64(seed))
        };
        let trace = stamp(9);
        assert_eq!(trace, stamp(9), "same seed must stamp identical arrivals");
        let arrivals: Vec<u64> = trace.transactions().iter().map(|t| t.arrival_ns).collect();
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]), "{arrivals:?}");
        assert!(trace.is_timed());
    }

    #[test]
    fn csv_header_and_blank_lines_are_tolerated() {
        let parsed = Trace::from_csv("bank,row,col,op,bit\n\n0,1,2,W,1\n\n1,3,4,R,\n").unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed.transactions()[0].op, Op::Write(true));
        assert_eq!(parsed.transactions()[1].op, Op::Read);
    }

    #[test]
    fn bad_op_enum_carries_the_offending_pair() {
        let error = Trace::from_csv("0,1,2,X,9\n").unwrap_err();
        assert_eq!(error.line, 1);
        assert_eq!(
            error.kind,
            TraceParseErrorKind::BadOp {
                op: "X".to_string(),
                bit: "9".to_string(),
            }
        );
        assert_eq!(error.kind.column(), Some("op"));
        // A write with a missing bit is an op/bit error too, not a count one.
        let error = Trace::from_csv("0,1,2,W,\n").unwrap_err();
        assert!(matches!(error.kind, TraceParseErrorKind::BadOp { .. }));
    }

    #[test]
    fn truncated_and_overlong_rows_report_their_field_count() {
        let error = Trace::from_csv("bank,row,col,op,bit\n0,1\n").unwrap_err();
        assert_eq!(error.line, 2);
        assert_eq!(error.kind, TraceParseErrorKind::FieldCount { got: 2 });
        assert_eq!(error.kind.column(), None);
        let error = Trace::from_csv("0,1,2,R,,7,extra\n").unwrap_err();
        assert_eq!(error.kind, TraceParseErrorKind::FieldCount { got: 7 });
        assert_eq!(
            error.to_string(),
            "trace line 1: expected 5 or 6 fields, got 7"
        );
    }

    #[test]
    fn non_numeric_address_fields_name_their_column() {
        for (record, column, value) in [
            ("x,1,2,R,\n", "bank", "x"),
            ("0,♞,2,R,\n", "row", "♞"),
            ("0,1,-3,W,1\n", "col", "-3"),
        ] {
            let error = Trace::from_csv(record).unwrap_err();
            assert_eq!(
                error.kind,
                TraceParseErrorKind::BadNumber {
                    column,
                    value: value.to_string(),
                },
                "{record:?}"
            );
            assert_eq!(error.kind.column(), Some(column));
        }
    }

    #[test]
    fn counts() {
        let trace = sample_trace();
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.reads(), 2);
        assert!(!trace.is_empty());
        assert!(Trace::new().is_empty());
    }

    #[test]
    fn binary_round_trips_timed_and_untimed() {
        for timed in [false, true] {
            let mut trace = sample_trace();
            if timed {
                for (k, txn) in trace.transactions.iter_mut().enumerate() {
                    txn.arrival_ns = 7 * k as u64;
                }
            }
            let bytes = trace.to_binary();
            assert_eq!(
                bytes.len(),
                TRACE_HEADER_BYTES + TRACE_RECORD_BYTES * trace.len()
            );
            assert_eq!(Trace::from_binary(&bytes).unwrap(), trace);
        }
        let empty = Trace::new().to_binary();
        assert_eq!(empty.len(), TRACE_HEADER_BYTES);
        assert!(Trace::from_binary(&empty).unwrap().is_empty());
    }

    #[test]
    fn view_decodes_without_copying() {
        let trace = sample_trace();
        let bytes = trace.to_binary();
        let view = TraceView::new(&bytes).unwrap();
        assert_eq!(view.len(), trace.len());
        assert!(!view.is_empty());
        for (i, txn) in view.iter().enumerate() {
            assert_eq!(txn, trace.get(i));
        }
        assert_eq!(view.to_trace(), trace);
    }

    #[test]
    fn binary_errors_are_typed() {
        let good = sample_trace().to_binary();

        assert_eq!(
            TraceView::new(&good[..10]).unwrap_err(),
            TraceBinaryError::Truncated { got: 10 }
        );

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            TraceView::new(&bad_magic).unwrap_err(),
            TraceBinaryError::BadMagic { got: *b"XTTR" }
        );

        let mut bad_version = good.clone();
        bad_version[4] = 9;
        assert_eq!(
            TraceView::new(&bad_version).unwrap_err(),
            TraceBinaryError::BadVersion { got: 9 }
        );

        // Chop one byte off the last record: body no longer a whole stride.
        let misaligned = &good[..good.len() - 1];
        assert_eq!(
            TraceView::new(misaligned).unwrap_err(),
            TraceBinaryError::Misaligned {
                body_bytes: misaligned.len() - TRACE_HEADER_BYTES
            }
        );

        // Chop a whole record: aligned, but the header count disagrees.
        let short = &good[..good.len() - TRACE_RECORD_BYTES];
        assert_eq!(
            TraceView::new(short).unwrap_err(),
            TraceBinaryError::CountMismatch { header: 4, body: 3 }
        );

        let mut bad_op = good.clone();
        bad_op[TRACE_HEADER_BYTES + 2 * TRACE_RECORD_BYTES + 12] = 7;
        assert_eq!(
            TraceView::new(&bad_op).unwrap_err(),
            TraceBinaryError::BadOp { record: 2, code: 7 }
        );
        // Errors render a human-readable description.
        assert!(TraceView::new(&bad_op)
            .unwrap_err()
            .to_string()
            .contains("record 2"));
    }

    #[test]
    fn csv_and_binary_agree() {
        use rand::SeedableRng;
        let trace = sample_trace().with_poisson_arrivals(12.0, &mut StdRng::seed_from_u64(2010));
        let via_csv = Trace::from_csv(&trace.to_csv()).unwrap();
        let via_bin = Trace::from_binary(&trace.to_binary()).unwrap();
        assert_eq!(via_csv, via_bin);
        assert_eq!(via_bin, trace);
    }
}
