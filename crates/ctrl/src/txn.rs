//! Transactions and replayable traces.
//!
//! The controller consumes a flat stream of [`Transaction`]s — bank, cell
//! address, read or write. A [`Trace`] is such a stream frozen into a value:
//! it can be generated synthetically (see [`crate::workload`]), saved to CSV,
//! reloaded, and replayed bit-identically against any controller
//! configuration, which is what makes scheme-vs-scheme comparisons fair
//! (every scheme sees the exact same traffic).

use serde::{Deserialize, Serialize};
use stt_array::Address;

/// What a transaction asks the controller to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Sense the stored bit and return it.
    Read,
    /// Program the given bit.
    Write(bool),
}

impl Op {
    /// `true` for [`Op::Read`].
    #[must_use]
    pub fn is_read(self) -> bool {
        matches!(self, Op::Read)
    }
}

/// One memory transaction: an operation against one cell of one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Transaction {
    /// Target bank index (`0..banks`).
    pub bank: usize,
    /// Cell address within the bank.
    pub addr: Address,
    /// The operation.
    pub op: Op,
}

impl Transaction {
    /// A read of `addr` on `bank`.
    #[must_use]
    pub fn read(bank: usize, addr: Address) -> Self {
        Self {
            bank,
            addr,
            op: Op::Read,
        }
    }

    /// A write of `bit` to `addr` on `bank`.
    #[must_use]
    pub fn write(bank: usize, addr: Address, bit: bool) -> Self {
        Self {
            bank,
            addr,
            op: Op::Write(bit),
        }
    }
}

/// A replayable, ordered stream of transactions.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    transactions: Vec<Transaction>,
}

/// A malformed line met while parsing a [`Trace`] from CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

impl Trace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an existing transaction list.
    #[must_use]
    pub fn from_transactions(transactions: Vec<Transaction>) -> Self {
        Self { transactions }
    }

    /// Appends a transaction.
    pub fn push(&mut self, txn: Transaction) {
        self.transactions.push(txn);
    }

    /// Number of transactions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// `true` when the trace holds no transactions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// The transactions, in replay order.
    #[must_use]
    pub fn transactions(&self) -> &[Transaction] {
        &self.transactions
    }

    /// Count of read transactions.
    #[must_use]
    pub fn reads(&self) -> usize {
        self.transactions.iter().filter(|t| t.op.is_read()).count()
    }

    /// Serialises to the trace CSV dialect: a `bank,row,col,op,bit` header
    /// followed by one record per transaction (`op` is `R` or `W`; `bit` is
    /// empty for reads).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("bank,row,col,op,bit\n");
        for txn in &self.transactions {
            let (op, bit) = match txn.op {
                Op::Read => ("R", String::new()),
                Op::Write(bit) => ("W", u8::from(bit).to_string()),
            };
            out.push_str(&format!(
                "{},{},{},{op},{bit}\n",
                txn.bank, txn.addr.row, txn.addr.col
            ));
        }
        out
    }

    /// Parses the CSV dialect written by [`Trace::to_csv`]. A leading header
    /// line is accepted and skipped; blank lines are ignored.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceParseError`] naming the first malformed line.
    pub fn from_csv(text: &str) -> Result<Self, TraceParseError> {
        let mut transactions = Vec::new();
        for (index, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || (index == 0 && line.starts_with("bank")) {
                continue;
            }
            let err = |message: String| TraceParseError {
                line: index + 1,
                message,
            };
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 5 {
                return Err(err(format!("expected 5 fields, got {}", fields.len())));
            }
            let parse = |field: &str, what: &str| {
                field
                    .parse::<usize>()
                    .map_err(|_| err(format!("bad {what} {field:?}")))
            };
            let bank = parse(fields[0], "bank")?;
            let addr = Address::new(parse(fields[1], "row")?, parse(fields[2], "col")?);
            let op = match (fields[3], fields[4]) {
                ("R", "") => Op::Read,
                ("W", "0") => Op::Write(false),
                ("W", "1") => Op::Write(true),
                (op, bit) => return Err(err(format!("bad op/bit pair {op:?}/{bit:?}"))),
            };
            transactions.push(Transaction { bank, addr, op });
        }
        Ok(Self { transactions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace::from_transactions(vec![
            Transaction::write(0, Address::new(1, 2), true),
            Transaction::read(1, Address::new(3, 4)),
            Transaction::write(2, Address::new(0, 0), false),
            Transaction::read(0, Address::new(1, 2)),
        ])
    }

    #[test]
    fn csv_round_trips() {
        let trace = sample_trace();
        let csv = trace.to_csv();
        assert_eq!(Trace::from_csv(&csv).unwrap(), trace);
    }

    #[test]
    fn csv_header_and_blank_lines_are_tolerated() {
        let parsed = Trace::from_csv("bank,row,col,op,bit\n\n0,1,2,W,1\n\n1,3,4,R,\n").unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed.transactions()[0].op, Op::Write(true));
        assert_eq!(parsed.transactions()[1].op, Op::Read);
    }

    #[test]
    fn malformed_lines_name_their_line_number() {
        let error = Trace::from_csv("0,1,2,X,9\n").unwrap_err();
        assert_eq!(error.line, 1);
        assert!(error.message.contains("op/bit"));
        let error = Trace::from_csv("bank,row,col,op,bit\n0,1\n").unwrap_err();
        assert_eq!(error.line, 2);
    }

    #[test]
    fn counts() {
        let trace = sample_trace();
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.reads(), 2);
        assert!(!trace.is_empty());
        assert!(Trace::new().is_empty());
    }
}
