//! Runtime scheme dispatch for the controller's read path.
//!
//! The sensing crate exposes the three schemes as distinct types behind the
//! [`SenseScheme`] trait; a controller picks one per configuration at run
//! time, so this module wraps them in an enum and exposes the one operation
//! the engine needs: *sense this cell once, mutating the array exactly as
//! the scheme's hardware sequence would*.

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use stt_array::{Address, Array};
use stt_mtj::ResistanceState;
use stt_sense::{
    ConventionalScheme, DesignPoint, DestructiveScheme, NondestructiveScheme, SchemeKind,
    SenseScheme,
};
use stt_units::Volts;

/// One sensing attempt, with the quantity the retry policy judges.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sensed {
    /// The bit the comparator latched.
    pub bit: bool,
    /// What the comparator actually saw: differential **plus** this
    /// instance's sampled offset. `bit == (observed > 0)`.
    pub observed: Volts,
    /// Whether the latched bit matches the state the cell held when the
    /// attempt started.
    pub correct: bool,
}

impl Sensed {
    /// `true` when `observed` clears `guard_band` in magnitude — the read
    /// was unambiguous as far as the retry policy is concerned.
    #[must_use]
    pub fn is_confident(&self, guard_band: Volts) -> bool {
        self.observed.get().abs() >= guard_band.get()
    }
}

/// A run-time-selected sensing scheme.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Scheme {
    /// Shared-reference sensing.
    Conventional(ConventionalScheme),
    /// Destructive self-reference (erase + write back on every read).
    Destructive(DestructiveScheme),
    /// The paper's nondestructive self-reference.
    Nondestructive(NondestructiveScheme),
}

impl Scheme {
    /// Builds the scheme of `kind` from a design point.
    #[must_use]
    pub fn for_kind(kind: SchemeKind, design: &DesignPoint) -> Self {
        match kind {
            SchemeKind::Conventional => {
                Scheme::Conventional(ConventionalScheme::new(design.conventional))
            }
            SchemeKind::Destructive => {
                Scheme::Destructive(DestructiveScheme::new(design.destructive))
            }
            SchemeKind::Nondestructive => {
                Scheme::Nondestructive(NondestructiveScheme::new(design.nondestructive))
            }
        }
    }

    /// Which scheme this is.
    #[must_use]
    pub fn kind(&self) -> SchemeKind {
        match self {
            Scheme::Conventional(s) => s.kind(),
            Scheme::Destructive(s) => s.kind(),
            Scheme::Nondestructive(s) => s.kind(),
        }
    }

    /// `true` if a read overwrites the cell (and must write it back).
    #[must_use]
    pub fn is_destructive(&self) -> bool {
        matches!(self, Scheme::Destructive(_))
    }

    /// The usable threshold of the scheme's sense amplifier — the natural
    /// guard band for a retry policy in this scheme's read path.
    #[must_use]
    pub fn amplifier_threshold(&self) -> Volts {
        match self {
            Scheme::Conventional(s) => s.amplifier().usable_threshold(),
            Scheme::Destructive(s) => s.amplifier().usable_threshold(),
            Scheme::Nondestructive(s) => s.amplifier().usable_threshold(),
        }
    }

    /// Senses `addr` once, with this scheme's full hardware sequence.
    ///
    /// Conventional and nondestructive reads never touch cell state. A
    /// destructive read runs the §II-C sequence — sense, erase with a real
    /// programming pulse, write back the *sensed* value — so a mis-sense
    /// physically corrupts the cell, exactly the failure mode the paper
    /// describes.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    pub fn sense_once(&self, array: &mut Array, addr: Address, rng: &mut StdRng) -> Sensed {
        match self {
            Scheme::Conventional(s) => sense_analytic(s, array, addr, rng),
            Scheme::Nondestructive(s) => sense_analytic(s, array, addr, rng),
            Scheme::Destructive(s) => {
                let sensed = sense_analytic(s, array, addr, rng);
                array.write_bit_pulsed(addr, false, rng);
                array.write_bit_pulsed(addr, sensed.bit, rng);
                sensed
            }
        }
    }

    /// The sense step alone, with no state mutation even for the
    /// destructive scheme.
    ///
    /// The fault injector needs this to build the destructive sequence as
    /// *separate* interruptible steps (sense, erase, write back) for
    /// [`stt_array::run_with_power_failure`].
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    pub fn sense_readonly(&self, array: &Array, addr: Address, rng: &mut StdRng) -> Sensed {
        match self {
            Scheme::Conventional(s) => sense_analytic(s, array, addr, rng),
            Scheme::Nondestructive(s) => sense_analytic(s, array, addr, rng),
            Scheme::Destructive(s) => sense_analytic(s, array, addr, rng),
        }
    }
}

/// The analytic sense shared by every scheme: settled differential from the
/// scheme's margins, plus a freshly sampled amplifier offset.
///
/// This mirrors [`SenseScheme::read`] but keeps the offset visible in
/// `observed`, because the retry policy needs the comparator's actual input,
/// not just the sign it latched.
fn sense_analytic<S: SenseScheme>(
    scheme: &S,
    array: &Array,
    addr: Address,
    rng: &mut StdRng,
) -> Sensed {
    let cell = array.cell(addr);
    let margins = scheme.margins(cell);
    let stored = cell.state();
    let differential = match stored {
        ResistanceState::AntiParallel => margins.margin1,
        ResistanceState::Parallel => -margins.margin0,
    };
    let offset = scheme.amplifier().sample_offset(rng);
    let bit = scheme.amplifier().resolve(differential, offset);
    Sensed {
        bit,
        observed: differential + offset,
        correct: bit == stored.bit(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use stt_array::{ArraySpec, CellSpec};

    fn setup() -> (Array, DesignPoint, StdRng) {
        let mut rng = StdRng::seed_from_u64(21);
        let array = ArraySpec::small_test_array().sample(&mut rng);
        let nominal = CellSpec::date2010_chip().nominal_cell();
        (array, DesignPoint::date2010(&nominal), rng)
    }

    #[test]
    fn kinds_round_trip() {
        let (_, design, _) = setup();
        for kind in SchemeKind::ALL {
            let scheme = Scheme::for_kind(kind, &design);
            assert_eq!(scheme.kind(), kind);
            assert_eq!(scheme.is_destructive(), kind == SchemeKind::Destructive);
        }
    }

    #[test]
    fn observed_sign_matches_latched_bit() {
        let (mut array, design, mut rng) = setup();
        array.fill_with(|addr| addr.row % 2 == 0);
        for kind in SchemeKind::ALL {
            let scheme = Scheme::for_kind(kind, &design);
            for addr in array.addresses().collect::<Vec<_>>() {
                let sensed = scheme.sense_once(&mut array, addr, &mut rng);
                assert_eq!(sensed.bit, sensed.observed.get() > 0.0);
            }
        }
    }

    #[test]
    fn nondestructive_sense_never_mutates() {
        let (mut array, design, mut rng) = setup();
        array.fill_with(|addr| addr.col % 2 == 0);
        let before = array.clone();
        let scheme = Scheme::for_kind(SchemeKind::Nondestructive, &design);
        for addr in array.addresses().collect::<Vec<_>>() {
            scheme.sense_once(&mut array, addr, &mut rng);
        }
        assert_eq!(array, before);
    }

    #[test]
    fn destructive_sense_round_trips_state_on_success() {
        let (mut array, design, mut rng) = setup();
        let addr = Address::new(3, 3);
        array.write_bit(addr, true);
        let scheme = Scheme::for_kind(SchemeKind::Destructive, &design);
        let sensed = scheme.sense_once(&mut array, addr, &mut rng);
        assert!(sensed.correct);
        assert!(array.read_state(addr).bit());
    }

    #[test]
    fn confidence_is_a_guard_band_test() {
        let sensed = Sensed {
            bit: true,
            observed: Volts::from_milli(10.0),
            correct: true,
        };
        assert!(sensed.is_confident(Volts::from_milli(8.0)));
        assert!(!sensed.is_confident(Volts::from_milli(12.0)));
    }
}
