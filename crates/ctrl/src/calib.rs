//! Online per-bank β-recalibration (DESIGN.md §15).
//!
//! The paper's β* (Eq. 5/10) is a *static* optimum: it equalises the two
//! sense margins for the device the design was calibrated against. Under
//! dynamic drift (see [`DriftPlan`](crate::faults::DriftPlan)) the
//! high-state roll-off flattens and the margins de-equalise — the stored-1
//! margin collapses long before the stored-0 margin moves — so a bank
//! serving hot or aged cells starts exhausting read retries and eventually
//! misreading, while its β is still the room-temperature value.
//!
//! The calibration daemon closes the loop per bank:
//!
//! 1. **Watch** — misread + retry-exhaustion counts are compared against
//!    [`CalibConfig::trip_rate`] over windows of
//!    [`CalibConfig::check_reads`] demand reads.
//! 2. **Burst** — when tripped, the bank issues
//!    [`CalibConfig::burst_reads`] *read-only* reference-cell senses
//!    through the real sensing path (never mutating state, drawing from a
//!    dedicated calibration RNG stream so demand randomness is untouched).
//! 3. **Refit** — the bank re-runs the Eq. 5/10 β optimiser against its
//!    drifted nominal device and swaps the new operating point into its
//!    read path.
//!
//! Retry exhaustion fires while the margin is still several SA sigmas wide
//! (an unconfident read needs `|observation|` under the 1 mV guard band;
//! a misread needs the noise to cross the full margin), so a trip normally
//! lands **before** the first misread — the recalibrated bank never leaves
//! the paper's equal-margin operating point far behind.
//!
//! Two deployment modes share this config:
//!
//! * **Inline** ([`ControllerConfig::with_calib`](crate::engine::ControllerConfig::with_calib))
//!   — the bank evaluates the trip condition itself every `check_reads`
//!   demand reads. Works under serial, parallel and frontend dispatch and
//!   preserves bit-identity across all three.
//! * **Frontend daemon**
//!   ([`FrontendConfig::with_calib`](crate::sched::FrontendConfig::with_calib))
//!   — a periodic scheduler event per bank, arbitrated as background work
//!   (demand > test > calibration/scrub) so bursts only run in idle gaps
//!   and never delay or reorder demand traffic.

use serde::{Deserialize, Serialize};

/// Configuration for the per-bank calibration daemon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibConfig {
    /// Inline mode: evaluate the trip condition every this many demand
    /// reads on a bank.
    pub check_reads: u64,
    /// Trip threshold: recalibrate when
    /// `(misreads + unconfident reads) / reads` over the last window
    /// reaches this rate.
    pub trip_rate: f64,
    /// Reference-cell senses per calibration burst.
    pub burst_reads: u32,
    /// Frontend-daemon mode: period (ns) between calibration checks on
    /// each bank.
    pub interval_ns: f64,
}

impl CalibConfig {
    /// Baseline tuning: check every 64 reads, trip at a 1 % error rate
    /// (one bad read per window), 32-read bursts, 500 ns daemon period.
    #[must_use]
    pub fn date2010() -> Self {
        Self {
            check_reads: 64,
            trip_rate: 0.01,
            burst_reads: 32,
            interval_ns: 500.0,
        }
    }

    /// Sets the inline check window.
    ///
    /// # Panics
    ///
    /// Panics if `check_reads` is zero.
    #[must_use]
    pub fn with_check_reads(mut self, check_reads: u64) -> Self {
        assert!(
            check_reads > 0,
            "the check window must cover at least one read"
        );
        self.check_reads = check_reads;
        self
    }

    /// Sets the trip rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `(0, 1]`.
    #[must_use]
    pub fn with_trip_rate(mut self, rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0 && rate <= 1.0,
            "trip rate must be in (0, 1], got {rate}"
        );
        self.trip_rate = rate;
        self
    }

    /// Sets the burst length.
    ///
    /// # Panics
    ///
    /// Panics if `burst_reads` is zero.
    #[must_use]
    pub fn with_burst_reads(mut self, burst_reads: u32) -> Self {
        assert!(
            burst_reads > 0,
            "a calibration burst needs at least one read"
        );
        self.burst_reads = burst_reads;
        self
    }

    /// Sets the frontend daemon period.
    ///
    /// # Panics
    ///
    /// Panics if `interval_ns` is not finite and positive.
    #[must_use]
    pub fn with_interval_ns(mut self, interval_ns: f64) -> Self {
        assert!(
            interval_ns.is_finite() && interval_ns > 0.0,
            "calibration interval must be positive, got {interval_ns}"
        );
        self.interval_ns = interval_ns;
        self
    }

    /// `true` when `errors` bad reads over `reads` demand reads meet the
    /// trip threshold.
    #[must_use]
    pub fn trips(&self, errors: u64, reads: u64) -> bool {
        #[allow(clippy::cast_precision_loss)]
        let rate = if reads == 0 {
            0.0
        } else {
            errors as f64 / reads as f64
        };
        rate >= self.trip_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_trips_on_one_error_per_window() {
        let config = CalibConfig::date2010();
        assert!(!config.trips(0, 64));
        assert!(config.trips(1, 64), "1/64 ≥ 1 %");
        assert!(config.trips(5, 64));
        assert!(!config.trips(0, 0), "no reads, no trip");
    }

    #[test]
    fn builders_apply_and_validate() {
        let config = CalibConfig::date2010()
            .with_check_reads(128)
            .with_trip_rate(0.5)
            .with_burst_reads(8)
            .with_interval_ns(1000.0);
        assert_eq!(config.check_reads, 128);
        assert!(!config.trips(1, 128));
        assert!(config.trips(64, 128));
        assert_eq!(config.burst_reads, 8);
        assert!((config.interval_ns - 1000.0).abs() < f64::EPSILON);
    }

    #[test]
    #[should_panic(expected = "trip rate")]
    fn trip_rate_must_be_a_probability() {
        let _ = CalibConfig::date2010().with_trip_rate(0.0);
    }

    #[test]
    #[should_panic(expected = "at least one read")]
    fn burst_must_be_nonempty() {
        let _ = CalibConfig::date2010().with_burst_reads(0);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn interval_must_be_positive() {
        let _ = CalibConfig::date2010().with_interval_ns(0.0);
    }
}
