//! Fault-injection campaigns: sweep fault intensity × protection level ×
//! sensing scheme and report how each configuration degrades.
//!
//! A campaign answers the reliability question the paper's Table-level
//! arguments gesture at but cannot measure: *given the same traffic and the
//! same injected faults, how often does each configuration hand the host a
//! wrong (or unusable) bit?* Every cell of the sweep replays the **same
//! trace** against the **same fault plan** — only the sensing scheme and
//! the protection level change — so differences in the hazard column are
//! attributable to the configuration, not the workload.
//!
//! The hazard metric is deliberately host-centric:
//!
//! * **No ECC** — every misread is silent data loss, so the hazard is the
//!   misread rate itself.
//! * **ECC / ECC+scrub** — single-bit errors are corrected away; the hazard
//!   is the rate of reads left *uncorrectable* (detected, data unusable) or
//!   *silent* (the codec passed a wrong word) — see
//!   [`EccTelemetry::hazard_rate`](crate::telemetry::EccTelemetry).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stt_array::{Address, ArraySpec};
use stt_sense::SchemeKind;

use crate::engine::{Controller, ControllerConfig};
use crate::faults::FaultPlan;
use crate::hierarchy::Topology;
use crate::reliability::{EccMode, ScrubConfig};
use crate::sched::{Frontend, FrontendConfig};
use crate::txn::Trace;
use crate::workload::Workload;

/// Seed salt for deterministic stuck-cell placement.
const PLACEMENT_STREAM: u64 = 0x504c_4143_454d_4e54;

/// How much machinery stands between a misread and the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protection {
    /// Raw bank reads: every misread is silent (the seed behaviour).
    None,
    /// (72,64) SECDED on demand reads, no background repair.
    Ecc,
    /// SECDED plus the background scrub daemon repairing in place.
    EccScrub,
}

impl Protection {
    /// Every protection level, in increasing order of machinery.
    pub const ALL: [Protection; 3] = [Protection::None, Protection::Ecc, Protection::EccScrub];

    /// Short machine-readable name for table/CSV rows.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Protection::None => "none",
            Protection::Ecc => "ecc",
            Protection::EccScrub => "ecc+scrub",
        }
    }

    /// The controller ECC mode this level implies.
    #[must_use]
    pub fn ecc_mode(self) -> EccMode {
        match self {
            Protection::None => EccMode::None,
            Protection::Ecc | Protection::EccScrub => EccMode::Secded,
        }
    }

    /// `true` when the scrub daemon runs.
    #[must_use]
    pub fn scrubbed(self) -> bool {
        self == Protection::EccScrub
    }
}

/// One rung of the fault-intensity ladder: how hard the injector leans on
/// the array while the trace runs.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultIntensity {
    /// Row label (`"low"`, `"medium"`, ...).
    pub label: String,
    /// Stuck-at defects placed per bank (deterministically seeded).
    pub stuck_cells_per_bank: usize,
    /// Power-cut cadence (every Nth read per bank), `None` for never.
    pub power_cut_every: Option<u64>,
    /// Retention-failure hazard rate (flips per cell per ns of busy time).
    pub retention_rate_per_ns: Option<f64>,
    /// Per-read, per-cell read-disturb flip probability.
    pub read_disturb_prob: Option<f64>,
}

impl FaultIntensity {
    /// No injected faults at all — the control rung.
    #[must_use]
    pub fn quiet() -> Self {
        Self {
            label: "quiet".into(),
            stuck_cells_per_bank: 0,
            power_cut_every: None,
            retention_rate_per_ns: None,
            read_disturb_prob: None,
        }
    }

    /// The default three-rung ladder (low / medium / high), tuned for the
    /// regime scrub exists for: persistent corruption (retention flips,
    /// power-cut damage) accrues steadily but *sparsely*, so an unprotected
    /// bank degrades monotonically while a scrubbed bank repairs faster
    /// than second errors land in the same word. Rates much hotter than
    /// this overwhelm single-error correction — 64-cell words expose ECC to
    /// every error in the word, not just the demanded bit — which is a
    /// measurable cliff, not a tuning target.
    #[must_use]
    pub fn ladder() -> Vec<Self> {
        vec![
            Self {
                label: "low".into(),
                stuck_cells_per_bank: 1,
                power_cut_every: Some(400),
                retention_rate_per_ns: None,
                read_disturb_prob: None,
            },
            Self {
                label: "medium".into(),
                stuck_cells_per_bank: 2,
                power_cut_every: Some(250),
                retention_rate_per_ns: Some(4e-7),
                read_disturb_prob: Some(2e-7),
            },
            Self {
                label: "high".into(),
                stuck_cells_per_bank: 4,
                power_cut_every: Some(150),
                retention_rate_per_ns: Some(6e-7),
                read_disturb_prob: Some(1e-6),
            },
        ]
    }

    /// Materialises this intensity into a [`FaultPlan`] for a controller of
    /// `banks` banks over `spec`, placing stuck cells at deterministically
    /// seeded distinct addresses.
    #[must_use]
    pub fn plan(&self, banks: usize, spec: &ArraySpec, seed: u64) -> FaultPlan {
        let mut plan = FaultPlan::none();
        if let Some(every) = self.power_cut_every {
            plan = plan.with_power_cut_every(every);
        }
        if let Some(rate) = self.retention_rate_per_ns {
            plan = plan.with_retention_rate(rate);
        }
        if let Some(prob) = self.read_disturb_prob {
            plan = plan.with_read_disturb(prob);
        }
        let mut rng = stt_stats::trial_rng(seed ^ PLACEMENT_STREAM, 0);
        for bank in 0..banks {
            let mut placed: Vec<Address> = Vec::new();
            while placed.len() < self.stuck_cells_per_bank.min(spec.capacity_bits()) {
                let addr = Address::new(rng.gen_range(0..spec.rows), rng.gen_range(0..spec.cols));
                if placed.contains(&addr) {
                    continue;
                }
                placed.push(addr);
                plan = plan.with_stuck_cell(bank, addr, rng.gen_bool(0.5));
            }
        }
        plan
    }
}

/// Everything a campaign sweep needs.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Bank topology of the swept memory (the campaign replays through the
    /// flat frontend, which addresses the topology's total bank count;
    /// richer shapes let a campaign match a hierarchy experiment
    /// bank-for-bank).
    pub topology: Topology,
    /// Per-bank array recipe.
    pub spec: ArraySpec,
    /// Transactions per sweep cell.
    pub ops: usize,
    /// Mean Poisson inter-arrival gap (nanoseconds); slack here is what
    /// gives the scrub daemon idle time to run in.
    pub mean_gap_ns: f64,
    /// Scrub tick interval per bank (nanoseconds), for the
    /// [`Protection::EccScrub`] column.
    pub scrub_interval_ns: f64,
    /// Master seed: drives the trace, the arrivals, the stuck-cell
    /// placement and every controller in the sweep.
    pub seed: u64,
    /// Sensing schemes to sweep.
    pub schemes: Vec<SchemeKind>,
    /// Fault-intensity rungs to sweep.
    pub intensities: Vec<FaultIntensity>,
}

impl CampaignConfig {
    /// Default campaign: two 64×64 banks (the paper's cell recipe on a
    /// quarter-size array, so the unprotected baseline actually *samples*
    /// the corruption the injector lays down — on the full 16 kb array a
    /// single-cell demand read almost never lands on a flipped cell within
    /// a campaign-sized trace), every scheme, the default intensity ladder.
    /// The scrub interval is set so a full pass (64 words × 25 ns) takes
    /// ~1.6 µs, several passes per campaign cell.
    #[must_use]
    pub fn date2010() -> Self {
        Self {
            topology: Topology::flat(2),
            spec: {
                let mut spec = ArraySpec::date2010_chip();
                spec.rows = 64;
                spec.cols = 64;
                spec.bitline.cells_per_bitline = 64;
                spec
            },
            ops: 4_000,
            mean_gap_ns: 120.0,
            scrub_interval_ns: 25.0,
            seed: 2010,
            schemes: SchemeKind::ALL.to_vec(),
            intensities: FaultIntensity::ladder(),
        }
    }

    /// Overrides the transaction count per sweep cell.
    #[must_use]
    pub fn with_ops(mut self, ops: usize) -> Self {
        self.ops = ops;
        self
    }

    /// Overrides the bank topology.
    #[must_use]
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Overrides the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the scheme list.
    #[must_use]
    pub fn with_schemes(mut self, schemes: Vec<SchemeKind>) -> Self {
        self.schemes = schemes;
        self
    }

    /// Overrides the intensity ladder.
    #[must_use]
    pub fn with_intensities(mut self, intensities: Vec<FaultIntensity>) -> Self {
        self.intensities = intensities;
        self
    }
}

/// One cell of the campaign sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRow {
    /// Sensing scheme.
    pub scheme: SchemeKind,
    /// Intensity-rung label.
    pub intensity: String,
    /// Protection level.
    pub protection: Protection,
    /// Demand reads served.
    pub reads: u64,
    /// Reads whose delivered bit was wrong.
    pub misreads: u64,
    /// ECC-corrected CEs (0 without ECC).
    pub corrected_ce: u64,
    /// ECC-detected UEs (0 without ECC).
    pub detected_ue: u64,
    /// Silent wrong words that passed the codec (0 without ECC).
    pub silent_errors: u64,
    /// The hazard metric: wrong-or-unusable reads per read served.
    pub hazard_rate: f64,
    /// Scrub coverage in full passes over the address space.
    pub scrub_coverage: f64,
    /// Cells the scrub daemon physically repaired.
    pub scrub_cells_rewritten: u64,
    /// Post-run integrity audit: stored cells disagreeing with the host.
    pub audit_corrupted_bits: u64,
}

/// Runs the full sweep: `schemes × intensities × protection levels`, every
/// cell replaying the same seeded trace. Rows come back in sweep order
/// (scheme-major, then intensity, then protection) and are deterministic
/// for a given configuration.
///
/// # Panics
///
/// Panics if the configuration is degenerate (no banks, no ops).
#[must_use]
pub fn run_campaign(config: &CampaignConfig) -> Vec<CampaignRow> {
    let banks = config.topology.total_banks();
    assert!(config.ops > 0, "campaign needs traffic");
    let template = ControllerConfig::date2010(SchemeKind::Nondestructive, banks);
    let footprint = ControllerConfig {
        spec: config.spec.clone(),
        ..template
    }
    .footprint();
    let trace: Trace = Workload::Uniform { read_fraction: 0.8 }
        .generate(
            footprint,
            config.ops,
            &mut StdRng::seed_from_u64(config.seed),
        )
        .with_poisson_arrivals(
            config.mean_gap_ns,
            &mut StdRng::seed_from_u64(config.seed ^ 0xa11),
        );

    let mut rows = Vec::new();
    for &scheme in &config.schemes {
        for intensity in &config.intensities {
            let plan = intensity.plan(banks, &config.spec, config.seed);
            for protection in Protection::ALL {
                let mut controller_config = ControllerConfig::date2010(scheme, banks);
                controller_config.spec = config.spec.clone();
                let controller_config = controller_config
                    .with_seed(config.seed)
                    .with_faults(plan.clone())
                    .with_ecc(protection.ecc_mode());
                let mut frontend_config = FrontendConfig::fcfs_unbounded();
                if protection.scrubbed() {
                    frontend_config =
                        frontend_config.with_scrub(ScrubConfig::every_ns(config.scrub_interval_ns));
                }
                let mut frontend =
                    Frontend::new(Controller::new(controller_config), frontend_config);
                let run = frontend.run(&trace);
                let aggregate = run.telemetry.aggregate();
                let hazard_rate = match protection {
                    Protection::None => aggregate.misread_rate(),
                    _ => aggregate.ecc.hazard_rate(),
                };
                rows.push(CampaignRow {
                    scheme,
                    intensity: intensity.label.clone(),
                    protection,
                    reads: aggregate.reads,
                    misreads: aggregate.misreads,
                    corrected_ce: aggregate.ecc.corrected_ce,
                    detected_ue: aggregate.ecc.detected_ue,
                    silent_errors: aggregate.ecc.silent_errors,
                    hazard_rate,
                    scrub_coverage: aggregate.ecc.scrub_coverage(),
                    scrub_cells_rewritten: aggregate.ecc.scrub_cells_rewritten,
                    audit_corrupted_bits: run.telemetry.audit_corrupted_bits,
                });
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protection_levels_map_to_modes() {
        assert_eq!(Protection::None.ecc_mode(), EccMode::None);
        assert_eq!(Protection::Ecc.ecc_mode(), EccMode::Secded);
        assert_eq!(Protection::EccScrub.ecc_mode(), EccMode::Secded);
        assert!(Protection::EccScrub.scrubbed());
        assert!(!Protection::Ecc.scrubbed());
        assert_eq!(Protection::ALL.len(), 3);
        assert_eq!(Protection::EccScrub.name(), "ecc+scrub");
    }

    #[test]
    fn intensity_plans_are_deterministic_and_distinct() {
        let intensity = &FaultIntensity::ladder()[1];
        let spec = ArraySpec::date2010_chip();
        let a = intensity.plan(2, &spec, 9);
        let b = intensity.plan(2, &spec, 9);
        assert_eq!(a, b, "same seed, same plan");
        assert_ne!(a, intensity.plan(2, &spec, 10), "seed moves the defects");
        assert_eq!(a.stuck_cells.len(), 2 * intensity.stuck_cells_per_bank);
        for bank in 0..2 {
            let cells: Vec<_> = a.stuck_cells_of(bank).map(|c| c.addr).collect();
            let mut deduped = cells.clone();
            deduped.dedup();
            assert_eq!(cells.len(), intensity.stuck_cells_per_bank);
            assert_eq!(cells.len(), deduped.len(), "defects must be distinct");
        }
    }

    #[test]
    fn campaign_topology_sets_the_swept_bank_count() {
        let mut config = CampaignConfig::date2010()
            .with_topology(Topology::new(2, 1, 2, 1))
            .with_ops(150)
            .with_schemes(vec![SchemeKind::Nondestructive])
            .with_intensities(vec![FaultIntensity::ladder().swap_remove(0)]);
        config.spec = ArraySpec::small_test_array();
        let plan =
            config.intensities[0].plan(config.topology.total_banks(), &config.spec, config.seed);
        assert_eq!(
            plan.stuck_cells.len(),
            4 * config.intensities[0].stuck_cells_per_bank,
            "defect placement must cover every bank of the topology"
        );
        let rows = run_campaign(&config);
        assert_eq!(rows.len(), Protection::ALL.len());
        assert!(rows.iter().all(|row| row.reads > 0));
    }

    #[test]
    fn quiet_intensity_is_a_no_fault_plan() {
        let plan = FaultIntensity::quiet().plan(3, &ArraySpec::small_test_array(), 5);
        assert_eq!(plan, FaultPlan::none());
    }
}
