//! Background scrub: configuration and bookkeeping for the daemon that
//! walks each bank re-reading ECC words during idle time.
//!
//! The scrub *daemon* lives in the scheduler frontend (see
//! [`crate::sched::frontend`]): it is a background-priority traffic source
//! that offers one word-scrub per bank every [`ScrubConfig::interval_ns`]
//! and is served only when the dispatch policy finds no demand work — the
//! demand class always preempts it at arbitration. The scrub *operation*
//! lives on the bank ([`crate::Bank::scrub_next`]): re-read the next word
//! through the configured sensing scheme, decode it, rewrite any corrected
//! cell in place, and log uncorrectable words.
//!
//! Scrub reads sense through a **dedicated per-bank RNG stream**, so an
//! interleaved scrub never changes the offsets (and therefore the results)
//! demand reads would have seen — the bit-identity property the
//! reliability integration suite asserts.

use serde::{Deserialize, Serialize};

/// Configuration of the background scrub daemon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScrubConfig {
    /// Target gap between two scrub word-reads on one bank (nanoseconds).
    /// The daemon is best-effort: a tick that finds the bank busy or demand
    /// waiting defers to the next tick, so under saturation scrub starves —
    /// visible in the coverage gauge, exactly as on real hardware.
    pub interval_ns: f64,
}

impl ScrubConfig {
    /// A scrub word-read per bank every `interval_ns` nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `interval_ns` is not finite and positive.
    #[must_use]
    pub fn every_ns(interval_ns: f64) -> Self {
        assert!(
            interval_ns.is_finite() && interval_ns > 0.0,
            "scrub interval must be positive, got {interval_ns}"
        );
        Self { interval_ns }
    }
}

/// What one [`crate::Bank::scrub_next`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScrubOutcome {
    /// The word index that was scanned.
    pub word: usize,
    /// `true` when the scan corrected a CE (and rewrote the flipped cell
    /// for a data error).
    pub corrected: bool,
    /// `true` when the word decoded uncorrectable (left for map-out).
    pub uncorrectable: bool,
    /// Cells physically rewritten by this scan.
    pub cells_rewritten: u32,
    /// `true` when this scan wrapped around to word 0 — one full pass of
    /// the bank completed.
    pub completed_pass: bool,
}

/// Round-robin word cursor for one bank's scrub walk.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScrubCursor {
    next: usize,
    words: usize,
}

impl ScrubCursor {
    /// A cursor over `words` ECC words, starting at word 0.
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero.
    #[must_use]
    pub fn new(words: usize) -> Self {
        assert!(words > 0, "scrub cursor needs at least one word");
        Self { next: 0, words }
    }

    /// The word the next scrub scan will visit.
    #[must_use]
    pub fn peek(&self) -> usize {
        self.next
    }

    /// Returns the word to scan and advances; the second element is `true`
    /// when the walk wrapped (a full pass completed).
    pub fn advance(&mut self) -> (usize, bool) {
        let word = self.next;
        self.next = (self.next + 1) % self.words;
        (word, self.next == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_walks_round_robin_and_reports_passes() {
        let mut cursor = ScrubCursor::new(3);
        assert_eq!(cursor.advance(), (0, false));
        assert_eq!(cursor.advance(), (1, false));
        assert_eq!(cursor.advance(), (2, true));
        assert_eq!(cursor.peek(), 0);
        assert_eq!(cursor.advance(), (0, false));
    }

    #[test]
    fn single_word_banks_complete_a_pass_every_scan() {
        let mut cursor = ScrubCursor::new(1);
        assert_eq!(cursor.advance(), (0, true));
        assert_eq!(cursor.advance(), (0, true));
    }

    #[test]
    #[should_panic(expected = "at least one word")]
    fn empty_cursor_is_rejected() {
        let _ = ScrubCursor::new(0);
    }

    #[test]
    #[should_panic(expected = "scrub interval")]
    fn non_positive_interval_is_rejected() {
        let _ = ScrubConfig::every_ns(0.0);
    }
}
