//! `reliability` — SECDED ECC, background scrub, and fault-injection
//! campaigns for the controller.
//!
//! The DATE 2010 paper's nondestructive read exists because a destructive
//! read that loses power mid-sequence is silent data loss. This module
//! turns that loss — and every other misread the fault injector can cause
//! (stuck cells, retention flips, read disturb, marginal senses) — into
//! *classified events* a system can act on:
//!
//! * [`codec`] — a (72,64) SECDED extended-Hamming code. Every demand read
//!   of an ECC-enabled bank senses the full 64-cell word, decodes it
//!   against a per-word check store, and is classified **clean** /
//!   **corrected CE** / **detected UE** / **silent** (the codec said fine
//!   but the delivered word was wrong — the case ECC exists to shrink).
//! * [`scrub`] — the background scrub daemon: a low-priority traffic
//!   source in the scheduler frontend that walks each bank re-reading
//!   words, correcting CEs in place and rewriting cells damaged by power
//!   cuts, on a dedicated RNG stream so demand reads are undisturbed.
//! * [`campaign`] — the fault-injection campaign runner behind
//!   `trafficsim --reliability-sweep`: fault intensity × protection level
//!   × sensing scheme, reporting uncorrectable/silent rates so graceful
//!   degradation is a measured (and asserted) property, not a hope.
//!
//! Word geometry: ECC words are groups of [`WORD_BITS`] consecutive cells
//! in row-major order; a bank whose capacity is not a multiple of 64 pads
//! its last word with constant zeros. The 8 check bits per word live in a
//! controller-side store (modelling dedicated check columns) that is
//! updated on every host write from the controller's write buffer — the
//! standard read-modify-write dance — and read back undisturbed, so every
//! syndrome the decoder sees was caused by array-side corruption.

pub mod campaign;
pub mod codec;
pub mod scrub;

use serde::{Deserialize, Serialize};

pub use campaign::{run_campaign, CampaignConfig, CampaignRow, FaultIntensity, Protection};
pub use scrub::{ScrubConfig, ScrubCursor, ScrubOutcome};

/// Cells per ECC word.
pub const WORD_BITS: usize = codec::DATA_BITS as usize;

/// Whether a controller protects its words with ECC.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum EccMode {
    /// No coding: every misread is silent data loss (the seed behaviour).
    #[default]
    None,
    /// (72,64) SECDED per word: demand reads sense the whole word, correct
    /// single-bit errors and flag double-bit errors.
    Secded,
}

impl EccMode {
    /// `true` when ECC is enabled.
    #[must_use]
    pub fn is_enabled(self) -> bool {
        matches!(self, EccMode::Secded)
    }

    /// Short machine-readable name for table/CSV rows.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EccMode::None => "none",
            EccMode::Secded => "secded",
        }
    }
}

/// Number of ECC words covering `cells` cells (last word possibly padded).
#[must_use]
pub fn word_count(cells: usize) -> usize {
    cells.div_ceil(WORD_BITS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_count_rounds_up() {
        assert_eq!(word_count(64), 1);
        assert_eq!(word_count(65), 2);
        assert_eq!(word_count(16_384), 256);
        assert_eq!(word_count(0), 0);
    }

    #[test]
    fn mode_names_and_flags() {
        assert!(!EccMode::None.is_enabled());
        assert!(EccMode::Secded.is_enabled());
        assert_eq!(EccMode::default(), EccMode::None);
        assert_eq!(EccMode::Secded.name(), "secded");
    }
}
