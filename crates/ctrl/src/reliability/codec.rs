//! (72,64) SECDED codec: single-error-correcting, double-error-detecting
//! extended Hamming code over 64-bit words.
//!
//! The code is the classic DRAM/SRAM layout: 7 Hamming check bits cover
//! positions `1..=71` of a codeword in which the 64 data bits occupy the
//! non-power-of-two positions, and an eighth overall-parity bit extends the
//! minimum distance to 4. Decoding computes the 7-bit syndrome plus the
//! overall parity and classifies the word:
//!
//! | syndrome | overall parity | verdict |
//! |---|---|---|
//! | 0 | even | clean |
//! | 0 | odd  | overall-parity bit flipped (corrected, data intact) |
//! | ≠0 | odd | single-bit error at the syndrome position (corrected) |
//! | ≠0 | even | double-bit error (detected, **never** miscorrected) |
//!
//! A syndrome that points outside the 71 used positions is reported as
//! uncorrectable too — that only happens for ≥3 flips, where the code makes
//! no promises but detection beats silent miscorrection.
//!
//! Everything is branch-light bit arithmetic over precomputed masks, so the
//! codec is cheap enough to sit on every word read the controller serves
//! (see the `reliability_codec` bench).

use serde::{Deserialize, Serialize};

/// Data bits per codeword.
pub const DATA_BITS: u32 = 64;
/// Check bits per codeword: 7 Hamming bits plus the overall-parity bit.
pub const CHECK_BITS: u32 = 8;
/// Total codeword length in bits.
pub const CODE_BITS: u32 = DATA_BITS + CHECK_BITS;
/// Highest Hamming position in use (`1..=71`; 7 check + 64 data).
const MAX_POSITION: usize = 71;

/// `POSITION_OF_DATA[k]` = Hamming position (1-based) of data bit `k`.
const POSITION_OF_DATA: [u8; DATA_BITS as usize] = build_position_of_data();
/// `DATA_OF_POSITION[p]` = data-bit index at Hamming position `p`, or `-1`
/// when `p` is a check-bit position or out of range.
const DATA_OF_POSITION: [i8; 128] = build_data_of_position();
/// `GROUP_MASK[i]` selects the data bits whose Hamming position has bit `i`
/// set — the parity group of check bit `i`.
const GROUP_MASK: [u64; 7] = build_group_masks();

const fn build_position_of_data() -> [u8; DATA_BITS as usize] {
    let mut table = [0u8; DATA_BITS as usize];
    let mut position = 1usize;
    let mut k = 0usize;
    while k < DATA_BITS as usize {
        if !position.is_power_of_two() {
            table[k] = position as u8;
            k += 1;
        }
        position += 1;
    }
    table
}

const fn build_data_of_position() -> [i8; 128] {
    let mut table = [-1i8; 128];
    let mut k = 0usize;
    while k < DATA_BITS as usize {
        table[POSITION_OF_DATA[k] as usize] = k as i8;
        k += 1;
    }
    table
}

const fn build_group_masks() -> [u64; 7] {
    let mut masks = [0u64; 7];
    let mut k = 0usize;
    while k < DATA_BITS as usize {
        let position = POSITION_OF_DATA[k] as usize;
        let mut i = 0usize;
        while i < 7 {
            if position & (1 << i) != 0 {
                masks[i] |= 1u64 << k;
            }
            i += 1;
        }
        k += 1;
    }
    masks
}

#[inline]
fn parity64(x: u64) -> u8 {
    (x.count_ones() & 1) as u8
}

/// The 7 Hamming check bits of `data` (bit `i` of the return value is check
/// bit `i`, covering Hamming positions with bit `i` set).
#[inline]
#[must_use]
fn hamming_bits(data: u64) -> u8 {
    let mut check = 0u8;
    let mut i = 0;
    while i < 7 {
        check |= parity64(data & GROUP_MASK[i]) << i;
        i += 1;
    }
    check
}

/// Encodes `data` into its 8 check bits: 7 Hamming bits in the low bits and
/// the overall parity of the 72-bit codeword in bit 7.
#[inline]
#[must_use]
pub fn encode(data: u64) -> u8 {
    let hamming = hamming_bits(data);
    let overall = parity64(data) ^ parity64(u64::from(hamming));
    hamming | (overall << 7)
}

/// What [`decode`] concluded about one received codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecodeKind {
    /// Syndrome and overall parity agree: no error observed.
    Clean,
    /// A single flipped **data** bit was corrected.
    CorrectedData {
        /// The corrected data-bit index (`0..64`).
        bit: u8,
    },
    /// A single flipped **check** bit was corrected; the data was intact.
    /// Bit `7` is the overall-parity bit.
    CorrectedCheck {
        /// The flipped check-bit index (`0..8`).
        bit: u8,
    },
    /// A double-bit error (or a ≥3-bit error with an out-of-range
    /// syndrome): detected, deliberately **not** corrected.
    Uncorrectable,
}

impl DecodeKind {
    /// `true` for the two corrected variants — a correctable error (CE).
    #[must_use]
    pub fn is_corrected(self) -> bool {
        matches!(
            self,
            DecodeKind::CorrectedData { .. } | DecodeKind::CorrectedCheck { .. }
        )
    }
}

/// A decoded word: the data to deliver plus the codec's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Decoded {
    /// The delivered data: corrected when the verdict is a data CE, the
    /// received data unchanged otherwise (including uncorrectable words,
    /// which the host is told not to trust).
    pub data: u64,
    /// The classification.
    pub kind: DecodeKind,
}

/// Decodes a received `(data, check)` pair.
#[must_use]
pub fn decode(data: u64, check: u8) -> Decoded {
    let syndrome = (hamming_bits(data) ^ check) & 0x7f;
    let parity_even = parity64(data) ^ parity64(u64::from(check)) == 0;
    let kind = match (syndrome, parity_even) {
        (0, true) => DecodeKind::Clean,
        // Only the overall-parity bit disagrees: it flipped, data intact.
        (0, false) => DecodeKind::CorrectedCheck { bit: 7 },
        (s, false) => {
            if s.is_power_of_two() {
                DecodeKind::CorrectedCheck {
                    bit: s.trailing_zeros() as u8,
                }
            } else if (s as usize) <= MAX_POSITION {
                DecodeKind::CorrectedData {
                    bit: DATA_OF_POSITION[s as usize] as u8,
                }
            } else {
                // Odd weight but a position we never use: ≥3 flips.
                DecodeKind::Uncorrectable
            }
        }
        (_, true) => DecodeKind::Uncorrectable,
    };
    let data = match kind {
        DecodeKind::CorrectedData { bit } => data ^ (1u64 << bit),
        _ => data,
    };
    Decoded { data, kind }
}

/// Flips bit `index` of a codeword for fault-injection tests: indices
/// `0..64` are data bits, `64..72` are check bits (`71` = overall parity).
///
/// # Panics
///
/// Panics if `index` is not below [`CODE_BITS`].
#[must_use]
pub fn flip(data: u64, check: u8, index: u32) -> (u64, u8) {
    assert!(index < CODE_BITS, "codeword bit {index} out of range");
    if index < DATA_BITS {
        (data ^ (1u64 << index), check)
    } else {
        (data, check ^ (1u8 << (index - DATA_BITS)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_consistent() {
        // 64 distinct non-power-of-two positions in 1..=71.
        let mut seen = [false; 128];
        for &position in &POSITION_OF_DATA {
            let position = position as usize;
            assert!((1..=MAX_POSITION).contains(&position));
            assert!(!position.is_power_of_two());
            assert!(!seen[position], "duplicate position {position}");
            seen[position] = true;
        }
        for (k, &position) in POSITION_OF_DATA.iter().enumerate() {
            assert_eq!(DATA_OF_POSITION[position as usize], k as i8);
        }
    }

    #[test]
    fn clean_words_decode_clean() {
        for data in [0u64, u64::MAX, 0xdead_beef_cafe_f00d, 1, 1 << 63] {
            let check = encode(data);
            let decoded = decode(data, check);
            assert_eq!(decoded.kind, DecodeKind::Clean, "{data:#x}");
            assert_eq!(decoded.data, data);
        }
    }

    #[test]
    fn every_single_bit_error_is_corrected() {
        let data = 0xa5a5_5a5a_0f0f_f0f0u64;
        let check = encode(data);
        for index in 0..CODE_BITS {
            let (bad_data, bad_check) = flip(data, check, index);
            let decoded = decode(bad_data, bad_check);
            assert_eq!(decoded.data, data, "flip {index} must be corrected");
            assert!(
                decoded.kind.is_corrected(),
                "flip {index}: got {:?}",
                decoded.kind
            );
            if index < DATA_BITS {
                assert_eq!(decoded.kind, DecodeKind::CorrectedData { bit: index as u8 });
            } else {
                assert_eq!(
                    decoded.kind,
                    DecodeKind::CorrectedCheck {
                        bit: (index - DATA_BITS) as u8
                    }
                );
            }
        }
    }

    #[test]
    fn every_double_bit_error_is_detected_not_miscorrected() {
        let data = 0x0123_4567_89ab_cdefu64;
        let check = encode(data);
        for i in 0..CODE_BITS {
            for j in (i + 1)..CODE_BITS {
                let (d1, c1) = flip(data, check, i);
                let (d2, c2) = flip(d1, c1, j);
                let decoded = decode(d2, c2);
                assert_eq!(
                    decoded.kind,
                    DecodeKind::Uncorrectable,
                    "flips ({i}, {j}) must be detected"
                );
                assert_eq!(decoded.data, d2, "({i}, {j}): data must pass through");
            }
        }
    }

    #[test]
    fn flip_is_an_involution() {
        let data = 77u64;
        let check = encode(data);
        for index in 0..CODE_BITS {
            let (d, c) = flip(data, check, index);
            assert_ne!((d, c), (data, check));
            assert_eq!(flip(d, c, index), (data, check));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flip_rejects_out_of_range_bits() {
        let _ = flip(0, 0, CODE_BITS);
    }
}
