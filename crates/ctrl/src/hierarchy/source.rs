//! The closed-loop traffic source: a window-limited client population.
//!
//! Open-loop replay (a trace with fixed arrival timestamps) keeps offering
//! work no matter how far behind the memory falls — useful for measuring
//! saturation, wrong for locating it, because a real host *reacts*: once
//! its outstanding-request window fills, it stops issuing until something
//! completes. This source models exactly that reaction. Each channel gets
//! an independent copy: up to `window` transactions outstanding, a new one
//! issued after an exponential think gap whenever the window has room, and
//! — crucially — when the window is full the source goes quiet and is
//! *woken by the next completion*, so its issue rate is governed by the
//! memory's service rate. Sweeping `window` traces out the classic
//! throughput/latency curve whose knee `trafficsim --topology-sweep`
//! reports per sensing scheme.
//!
//! Determinism: every channel draws from its own RNG stream, seeded from
//! `(source seed, channel)` with the same SplitMix64 scrambling banks use,
//! and all draws happen inside the channel's own event loop — so sharded
//! execution issues the exact same transactions at the exact same times as
//! serial execution.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use stt_array::Address;

use crate::txn::Transaction;

use super::topology::Geometry;

/// Seed salt for the per-channel source RNG streams (distinct from every
/// bank stream by construction: SplitMix64 scrambles the salted seed).
const SOURCE_STREAM: u64 = 0x434c_4f53_4544_4c50;

/// A per-channel window-limited traffic source.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClosedLoopSource {
    /// Transactions each channel's source issues before retiring.
    pub ops_per_channel: usize,
    /// Maximum outstanding (issued, not yet completed) transactions per
    /// channel — the backpressure window.
    pub window: usize,
    /// Mean exponential think gap between issue opportunities
    /// (nanoseconds).
    pub mean_think_ns: f64,
    /// Fraction of issued transactions that are reads (`0.0..=1.0`).
    pub read_fraction: f64,
    /// Seed of the per-channel source streams (independent of the chip
    /// seed, so the same traffic can drive differently-seeded arrays).
    pub seed: u64,
}

impl ClosedLoopSource {
    /// A read-mostly source with a given window: 90 % reads, 40 ns mean
    /// think time — light enough that small windows leave the chip idle
    /// and large windows saturate the channel bus, so a window sweep
    /// brackets the knee.
    #[must_use]
    pub fn read_mostly(ops_per_channel: usize, window: usize) -> Self {
        Self {
            ops_per_channel,
            window,
            mean_think_ns: 40.0,
            read_fraction: 0.9,
            seed: 2010,
        }
    }

    /// Overrides the outstanding-request window.
    #[must_use]
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window;
        self
    }

    /// Overrides the mean think gap.
    #[must_use]
    pub fn with_mean_think_ns(mut self, mean_think_ns: f64) -> Self {
        self.mean_think_ns = mean_think_ns;
        self
    }

    /// Overrides the source seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics if the window is zero, the think gap is not positive and
    /// finite, or the read fraction leaves `[0, 1]`.
    pub fn validate(&self) {
        assert!(
            self.window > 0,
            "a closed loop needs a window of at least 1"
        );
        assert!(
            self.mean_think_ns.is_finite() && self.mean_think_ns > 0.0,
            "mean think gap must be positive and finite, got {}",
            self.mean_think_ns
        );
        assert!(
            (0.0..=1.0).contains(&self.read_fraction),
            "read fraction {} outside [0, 1]",
            self.read_fraction
        );
    }

    /// The RNG stream of channel `channel`'s source.
    #[must_use]
    pub(crate) fn rng(&self, channel: usize) -> StdRng {
        stt_stats::trial_rng(self.seed ^ SOURCE_STREAM, channel)
    }

    /// One exponential think gap (nanoseconds).
    pub(crate) fn next_think_ns(&self, rng: &mut StdRng) -> f64 {
        // Inverse-CDF with the open-interval guard: gen::<f64>() ∈ [0, 1).
        -self.mean_think_ns * (1.0 - rng.gen::<f64>()).ln()
    }

    /// Draws the next transaction for channel `channel`: a uniformly random
    /// cell *within the channel's own slice* of the chip (each channel
    /// loads only itself, which is what keeps channels shareable across
    /// worker threads with no cross-talk).
    pub(crate) fn next_txn(
        &self,
        geometry: &Geometry,
        channel: usize,
        rng: &mut StdRng,
    ) -> Transaction {
        let per_channel = geometry.topology.banks_per_channel();
        let local_bank = rng.gen_range(0..per_channel);
        let bank = channel * per_channel + local_bank;
        let addr = Address::new(
            rng.gen_range(0..geometry.rows),
            rng.gen_range(0..geometry.cols),
        );
        if rng.gen_bool(self.read_fraction) {
            Transaction::read(bank, addr)
        } else {
            Transaction::write(bank, addr, rng.gen_bool(0.5))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::Topology;

    #[test]
    fn draws_are_deterministic_per_channel_and_stay_in_range() {
        let geometry = Geometry::new(Topology::new(2, 1, 2, 2), 8, 8);
        let source = ClosedLoopSource::read_mostly(100, 4);
        for channel in 0..2 {
            let mut a = source.rng(channel);
            let mut b = source.rng(channel);
            for _ in 0..200 {
                let (ta, tb) = (
                    source.next_txn(&geometry, channel, &mut a),
                    source.next_txn(&geometry, channel, &mut b),
                );
                assert_eq!(ta, tb);
                assert_eq!(
                    geometry.topology.coord(ta.bank).channel,
                    channel,
                    "a channel's source must only load its own banks"
                );
                assert!(ta.addr.row < geometry.rows && ta.addr.col < geometry.cols);
                let gap = source.next_think_ns(&mut a);
                assert_eq!(gap, source.next_think_ns(&mut b));
                assert!(gap.is_finite() && gap >= 0.0);
            }
        }
    }

    #[test]
    fn channels_draw_distinct_streams() {
        let geometry = Geometry::new(Topology::new(2, 1, 2, 2), 8, 8);
        let source = ClosedLoopSource::read_mostly(100, 4);
        let series = |channel: usize| {
            let mut rng = source.rng(channel);
            (0..50)
                .map(|_| source.next_txn(&geometry, channel, &mut rng))
                .collect::<Vec<_>>()
        };
        let (a, b) = (series(0), series(1));
        assert!(
            a.iter()
                .zip(&b)
                .any(|(ta, tb)| ta.addr != tb.addr || ta.op != tb.op),
            "channel streams must not mirror each other"
        );
    }

    #[test]
    #[should_panic(expected = "window of at least 1")]
    fn zero_window_is_rejected() {
        ClosedLoopSource::read_mostly(10, 4)
            .with_window(0)
            .validate();
    }

    #[test]
    #[should_panic(expected = "think gap")]
    fn non_positive_think_gap_is_rejected() {
        ClosedLoopSource::read_mostly(10, 4)
            .with_mean_think_ns(0.0)
            .validate();
    }
}
