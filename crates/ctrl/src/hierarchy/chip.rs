//! The full-chip engine: per-channel event loops over a
//! channels × ranks × bank groups × banks topology.
//!
//! Structurally this is the scheduler frontend lifted one level: each
//! *channel* runs its own discrete-event loop (own [`EventQueue`], own
//! lanes, own bus bookkeeping, own traffic source stream), and channels
//! share **nothing** — which is exactly the property that lets
//! [`ShardDispatch::Sharded`] put one worker thread on each channel and
//! still produce results **bit-identical** to [`ShardDispatch::Serial`].
//! Within a channel, the levels below it exist as *shared resources*:
//! banks in a bank group share a group data bus, and every transfer in the
//! channel crosses the channel bus, so a completed array access still
//! queues for its buses before the data is really delivered (the
//! serialization delay that makes cheap reads buy bus headroom at scale).
//!
//! Banks are materialised **lazily**: a multi-GB address space is fully
//! addressable through the topology, but a bank allocates its array, truth
//! mirror and RNG streams only when the first transaction touches it.
//! Because every bank's streams derive from `(chip seed, global bank
//! index)`, the materialisation *order* is irrelevant — a bank behaves
//! identically whether it was built first or last, on this thread or that.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use stt_array::ArraySpec;
use stt_sense::SchemeKind;

use crate::bank::Bank;
use crate::engine::ControllerConfig;
use crate::faults::{DriftPlan, FaultPlan};
use crate::reliability::EccMode;
use crate::retry::RetryPolicy;
use crate::sched::event::EventQueue;
use crate::sched::policy::Policy;
use crate::sched::queue::{InService, Lane, Queued};
use crate::telemetry::{BankTelemetry, ChannelTelemetry, LatencyBounds, QueueTelemetry};
use crate::txn::{Transaction, TxnSource};

use super::interleave::InterleavePolicy;
use super::source::ClosedLoopSource;
use super::topology::{BankCoord, Geometry, Topology};

/// Data-bus timing for the shared levels of the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BusTiming {
    /// Time a completed access occupies its bank group's data bus
    /// (nanoseconds).
    pub group_bus_ns: f64,
    /// Time the same transfer occupies the channel bus (nanoseconds);
    /// the two phases are back-to-back, so a transfer holds both buses for
    /// `group_bus_ns + channel_bus_ns`.
    pub channel_bus_ns: f64,
}

impl BusTiming {
    /// Default burst timing: 4 ns on the group bus, 2 ns on the channel
    /// bus — small against the paper's 14–25 ns array reads, so the bus
    /// only becomes the bottleneck once several banks complete together
    /// (which is the regime the topology sweep hunts for).
    #[must_use]
    pub fn date2010() -> Self {
        Self {
            group_bus_ns: 4.0,
            channel_bus_ns: 2.0,
        }
    }

    fn validate(&self) {
        assert!(
            self.group_bus_ns.is_finite()
                && self.group_bus_ns >= 0.0
                && self.channel_bus_ns.is_finite()
                && self.channel_bus_ns >= 0.0,
            "bus timings must be finite and non-negative, got {self:?}"
        );
    }
}

/// How [`Chip::run_closed_loop`] / [`Chip::run_trace`] drive the channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardDispatch {
    /// Channels served one after another on the calling thread.
    Serial,
    /// One scoped worker thread per channel (bit-identical to serial:
    /// channels share nothing).
    Sharded,
}

/// Everything needed to build a [`Chip`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipConfig {
    /// The hierarchy's level counts.
    pub topology: Topology,
    /// Per-bank array recipe.
    pub spec: ArraySpec,
    /// Sensing scheme serving every read.
    pub kind: SchemeKind,
    /// Read-retry policy.
    pub retry: RetryPolicy,
    /// Faults to inject while serving.
    pub faults: FaultPlan,
    /// Master seed; global bank `k` derives its streams from `(seed, k)`.
    pub seed: u64,
    /// Read-latency histogram binning.
    #[serde(default)]
    pub latency_bounds: LatencyBounds,
    /// Error-correction layer over bank reads.
    #[serde(default)]
    pub ecc: EccMode,
    /// How linear host addresses map onto the hierarchy.
    pub interleave: InterleavePolicy,
    /// Shared-bus timing.
    pub bus: BusTiming,
    /// Per-bank dispatch policy inside each channel.
    pub policy: Policy,
}

impl ChipConfig {
    /// Paper-scale banks (16 kb each) arranged in `topology`, no faults,
    /// linear interleaving, FCFS dispatch.
    #[must_use]
    pub fn date2010(kind: SchemeKind, topology: Topology) -> Self {
        Self {
            topology,
            spec: ArraySpec::date2010_chip(),
            kind,
            retry: RetryPolicy::date2010(),
            faults: FaultPlan::none(),
            seed: 2010,
            latency_bounds: LatencyBounds::date2010(),
            ecc: EccMode::None,
            interleave: InterleavePolicy::Linear,
            bus: BusTiming::date2010(),
            policy: Policy::Fcfs,
        }
    }

    /// Small 8×8 banks for fast tests.
    #[must_use]
    pub fn small(kind: SchemeKind, topology: Topology) -> Self {
        Self {
            spec: ArraySpec::small_test_array(),
            ..Self::date2010(kind, topology)
        }
    }

    /// Overrides the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the fault plan.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Overrides the ECC layer.
    #[must_use]
    pub fn with_ecc(mut self, ecc: EccMode) -> Self {
        self.ecc = ecc;
        self
    }

    /// Overrides the interleaving policy.
    #[must_use]
    pub fn with_interleave(mut self, interleave: InterleavePolicy) -> Self {
        self.interleave = interleave;
        self
    }

    /// Overrides the bus timing.
    #[must_use]
    pub fn with_bus(mut self, bus: BusTiming) -> Self {
        self.bus = bus;
        self
    }

    /// Overrides the per-bank dispatch policy.
    #[must_use]
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// The linear address space this chip exposes.
    #[must_use]
    pub fn geometry(&self) -> Geometry {
        Geometry::new(self.topology, self.spec.rows, self.spec.cols)
    }

    /// The flat controller configuration banks are built from (global bank
    /// index = flat topology index, so bank streams are a function of
    /// *position*, never of materialisation order or serving thread).
    fn bank_config(&self) -> ControllerConfig {
        ControllerConfig {
            banks: self.topology.total_banks(),
            spec: self.spec.clone(),
            kind: self.kind,
            retry: self.retry,
            faults: self.faults.clone(),
            seed: self.seed,
            latency_bounds: self.latency_bounds,
            ecc: self.ecc,
            drift: DriftPlan::quiet(),
            calib: None,
        }
    }
}

/// Hierarchy-wide telemetry: every *resident* (materialised) bank with its
/// coordinate, per-channel engine counters, and the integrity audit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipTelemetry {
    /// The topology the chip ran.
    pub topology: Topology,
    /// One entry per resident bank, in global bank order. Banks never
    /// touched by traffic do not exist and therefore do not appear.
    pub banks: Vec<(BankCoord, BankTelemetry)>,
    /// Per-channel engine counters, in channel order.
    pub channels: Vec<ChannelTelemetry>,
    /// Cells whose stored state disagrees with the host's view, summed over
    /// resident banks.
    pub audit_corrupted_bits: u64,
}

impl ChipTelemetry {
    /// Number of banks that have actually allocated state — on a sparse
    /// workload this stays at the number of *touched* banks, not the
    /// topology's total.
    #[must_use]
    pub fn resident_banks(&self) -> usize {
        self.banks.len()
    }

    /// Chip-level roll-up: every resident bank merged into one set of
    /// counters.
    #[must_use]
    pub fn aggregate(&self) -> BankTelemetry {
        let mut banks = self.banks.iter();
        let mut total = banks
            .next()
            .map(|(_, telemetry)| telemetry.clone())
            .unwrap_or_default();
        for (_, bank) in banks {
            total.merge(bank);
        }
        total
    }

    /// Per-channel roll-up of the resident banks' counters.
    #[must_use]
    pub fn by_channel(&self) -> BTreeMap<usize, BankTelemetry> {
        crate::telemetry::rollup_by(self.banks.iter().map(|(c, t)| (c.channel, t)))
    }

    /// Per-rank roll-up, keyed `(channel, rank)`.
    #[must_use]
    pub fn by_rank(&self) -> BTreeMap<(usize, usize), BankTelemetry> {
        crate::telemetry::rollup_by(self.banks.iter().map(|(c, t)| ((c.channel, c.rank), t)))
    }

    /// Per-bank-group roll-up, keyed `(channel, rank, group)`.
    #[must_use]
    pub fn by_group(&self) -> BTreeMap<(usize, usize, usize), BankTelemetry> {
        crate::telemetry::rollup_by(
            self.banks
                .iter()
                .map(|(c, t)| ((c.channel, c.rank, c.group), t)),
        )
    }

    /// Total transactions served by resident banks.
    #[must_use]
    pub fn transactions(&self) -> u64 {
        self.banks.iter().map(|(_, b)| b.reads + b.writes).sum()
    }
}

/// The outcome of one chip run.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipRun {
    /// Full hierarchy telemetry (accumulated across runs, like
    /// [`Controller::run`](crate::Controller::run)).
    pub telemetry: ChipTelemetry,
    /// Transactions completed by *this* run.
    pub completed: u64,
    /// Time of this run's last completion, maximised over channels
    /// (nanoseconds); 0 for an empty run.
    pub makespan_ns: f64,
}

impl ChipRun {
    /// Achieved throughput in transactions per second (0 for an empty run).
    #[must_use]
    pub fn ops_per_second(&self) -> f64 {
        if self.makespan_ns > 0.0 {
            self.completed as f64 / (self.makespan_ns * 1e-9)
        } else {
            0.0
        }
    }
}

/// Per-channel persistent state.
struct ChannelState {
    /// Resident banks, keyed by global bank index.
    banks: BTreeMap<usize, Bank>,
    /// Accumulated per-bank queueing counters (same keys as `banks`).
    queues: BTreeMap<usize, QueueTelemetry>,
    /// Accumulated channel engine counters.
    stats: ChannelTelemetry,
    /// Makespan of the most recent run (nanoseconds).
    last_end_ns: f64,
    /// Completions of the most recent run.
    last_completed: u64,
}

impl ChannelState {
    fn new() -> Self {
        Self {
            banks: BTreeMap::new(),
            queues: BTreeMap::new(),
            stats: ChannelTelemetry::default(),
            last_end_ns: 0.0,
            last_completed: 0,
        }
    }
}

/// What one channel's event loop is asked to serve.
enum ChannelWork<'a> {
    /// Open-loop replay of this channel's slice of a trace, pre-sorted by
    /// `(arrival, trace index)`; entries carry their original trace index.
    Trace(Vec<(usize, Transaction)>),
    /// Closed-loop generation from a window-limited source.
    Closed(&'a ClosedLoopSource),
}

/// A built chip. State (resident banks, telemetry) persists across runs,
/// exactly like [`Controller`](crate::Controller).
///
/// # Examples
///
/// ```
/// use stt_ctrl::hierarchy::{Chip, ChipConfig, ClosedLoopSource, ShardDispatch, Topology};
/// use stt_sense::SchemeKind;
///
/// let topology = Topology::new(2, 1, 2, 2);
/// let config = ChipConfig::small(SchemeKind::Nondestructive, topology);
/// let source = ClosedLoopSource::read_mostly(500, 4);
/// let mut serial = Chip::new(config.clone());
/// let mut sharded = Chip::new(config);
/// let a = serial.run_closed_loop(&source, ShardDispatch::Serial);
/// let b = sharded.run_closed_loop(&source, ShardDispatch::Sharded);
/// // Channels share nothing: one worker thread per channel is
/// // bit-identical to serving them one after another.
/// assert_eq!(a, b);
/// assert_eq!(a.completed, 2 * 500);
/// ```
pub struct Chip {
    config: ChipConfig,
    bank_config: ControllerConfig,
    channels: Vec<ChannelState>,
}

impl Chip {
    /// Builds an empty chip: the whole address space is addressable, no
    /// bank is resident yet.
    ///
    /// # Panics
    ///
    /// Panics if the bus timing is invalid.
    #[must_use]
    pub fn new(config: ChipConfig) -> Self {
        config.bus.validate();
        let bank_config = config.bank_config();
        let channels = (0..config.topology.channels)
            .map(|_| ChannelState::new())
            .collect();
        Self {
            config,
            bank_config,
            channels,
        }
    }

    /// The configuration this chip was built from.
    #[must_use]
    pub fn config(&self) -> &ChipConfig {
        &self.config
    }

    /// Number of banks currently resident (materialised by traffic).
    #[must_use]
    pub fn resident_banks(&self) -> usize {
        self.channels.iter().map(|c| c.banks.len()).sum()
    }

    /// The stored bits of every resident bank, keyed by global bank index
    /// (global bank order) — the state the sharded ≡ serial bit-identity
    /// property compares.
    #[must_use]
    pub fn stored_state(&self) -> Vec<(usize, Vec<bool>)> {
        self.channels
            .iter()
            .flat_map(|channel| {
                channel
                    .banks
                    .iter()
                    .map(|(&index, bank)| (index, bank.stored_bits()))
            })
            .collect()
    }

    /// A telemetry snapshot of everything accumulated so far.
    #[must_use]
    pub fn telemetry(&self) -> ChipTelemetry {
        let banks = self
            .channels
            .iter()
            .flat_map(|channel| {
                channel.banks.iter().map(|(&index, bank)| {
                    let mut telemetry = bank.telemetry().clone();
                    if let Some(queue) = channel.queues.get(&index) {
                        telemetry.queue = queue.clone();
                    }
                    (self.config.topology.coord(index), telemetry)
                })
            })
            .collect();
        ChipTelemetry {
            topology: self.config.topology,
            banks,
            channels: self.channels.iter().map(|c| c.stats.clone()).collect(),
            audit_corrupted_bits: self
                .channels
                .iter()
                .flat_map(|c| c.banks.values())
                .map(Bank::audit_corrupted_bits)
                .sum(),
        }
    }

    /// Drives every channel's closed-loop source to exhaustion
    /// (`ops_per_channel` each, window-limited) and returns the run's
    /// telemetry.
    pub fn run_closed_loop(
        &mut self,
        source: &ClosedLoopSource,
        dispatch: ShardDispatch,
    ) -> ChipRun {
        source.validate();
        let work = (0..self.config.topology.channels)
            .map(|_| ChannelWork::Closed(source))
            .collect();
        self.dispatch(work, dispatch)
    }

    /// Replays a physical trace (transactions target global bank indices,
    /// as produced by
    /// [`Workload::generate_physical`](crate::Workload::generate_physical)),
    /// sharded by channel. Admission is unbounded — flow control is the
    /// closed-loop source's job; replay measures what a fixed offered
    /// stream costs.
    ///
    /// Generic over [`TxnSource`], so an owned [`Trace`](crate::Trace) and
    /// a zero-copy [`TraceView`](crate::TraceView) shard into the same
    /// per-channel work lists and replay bit-identically.
    ///
    /// # Panics
    ///
    /// Panics if a transaction addresses a bank outside the topology.
    pub fn run_trace<S: TxnSource + ?Sized>(
        &mut self,
        trace: &S,
        dispatch: ShardDispatch,
    ) -> ChipRun {
        let total_banks = self.config.topology.total_banks();
        let per_channel = self.config.topology.banks_per_channel();
        let mut order: Vec<usize> = (0..trace.len()).collect();
        order.sort_by_key(|&i| (trace.get(i).arrival_ns, i));
        let mut work: Vec<Vec<(usize, Transaction)>> =
            vec![Vec::new(); self.config.topology.channels];
        for index in order {
            let txn = trace.get(index);
            assert!(
                txn.bank < total_banks,
                "transaction targets bank {} of a {total_banks}-bank chip",
                txn.bank
            );
            work[txn.bank / per_channel].push((index, txn));
        }
        self.dispatch(work.into_iter().map(ChannelWork::Trace).collect(), dispatch)
    }

    fn dispatch(&mut self, work: Vec<ChannelWork<'_>>, dispatch: ShardDispatch) -> ChipRun {
        let config = &self.config;
        let bank_config = &self.bank_config;
        match dispatch {
            ShardDispatch::Serial => {
                for (channel, (state, work)) in self.channels.iter_mut().zip(work).enumerate() {
                    run_channel(config, bank_config, channel, work, state);
                }
            }
            ShardDispatch::Sharded => {
                crossbeam::scope(|scope| {
                    for (channel, (state, work)) in self.channels.iter_mut().zip(work).enumerate() {
                        scope.spawn(move |_| {
                            run_channel(config, bank_config, channel, work, state);
                        });
                    }
                })
                .expect("a channel worker panicked");
            }
        }
        ChipRun {
            telemetry: self.telemetry(),
            completed: self.channels.iter().map(|c| c.last_completed).sum(),
            makespan_ns: self
                .channels
                .iter()
                .map(|c| c.last_end_ns)
                .fold(0.0, f64::max),
        }
    }
}

/// What one channel's event loop reacts to.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// The next open-loop trace transaction arrives.
    Arrive,
    /// The closed-loop source attempts to issue.
    Issue,
    /// A bank's array access finished; the transfer now claims its buses.
    BankDone { bank: usize },
    /// The transfer crossed both buses; the transaction is complete and the
    /// bank is free.
    Complete { bank: usize },
}

/// Everything one channel's event loop owns while it runs.
struct ChannelSim<'a> {
    config: &'a ChipConfig,
    bank_config: &'a ControllerConfig,
    geometry: Geometry,
    channel: usize,
    lanes: BTreeMap<usize, Lane>,
    events: EventQueue<Event>,
    stats: ChannelTelemetry,
    /// Bus-free times: one per (rank, group) pair, plus the channel bus.
    group_bus_free: Vec<f64>,
    channel_bus_free: f64,
    outstanding: usize,
    max_outstanding: u64,
    end_ns: f64,
    completed: u64,
}

impl<'a> ChannelSim<'a> {
    fn new(config: &'a ChipConfig, bank_config: &'a ControllerConfig, channel: usize) -> Self {
        Self {
            config,
            bank_config,
            geometry: config.geometry(),
            channel,
            lanes: BTreeMap::new(),
            events: EventQueue::new(),
            stats: ChannelTelemetry::default(),
            group_bus_free: vec![0.0; config.topology.ranks * config.topology.groups],
            channel_bus_free: 0.0,
            outstanding: 0,
            max_outstanding: 0,
            end_ns: 0.0,
            completed: 0,
        }
    }

    /// Offers one transaction to its bank at `now`: materialises the bank
    /// if this is its first touch, then serves or queues.
    fn offer(
        &mut self,
        banks: &mut BTreeMap<usize, Bank>,
        txn: Transaction,
        trace_index: usize,
        now: f64,
    ) {
        debug_assert_eq!(
            self.config.topology.coord(txn.bank).channel,
            self.channel,
            "transaction crossed channels"
        );
        self.stats.issued += 1;
        self.outstanding += 1;
        self.max_outstanding = self.max_outstanding.max(self.outstanding as u64);
        let bank = banks
            .entry(txn.bank)
            .or_insert_with(|| Bank::new(txn.bank, self.bank_config));
        let lane = self
            .lanes
            .entry(txn.bank)
            .or_insert_with(|| Lane::new(usize::MAX));
        lane.stats.admitted += 1;
        let queued = Queued {
            txn,
            trace_index,
            arrival_ns: now,
            admit_ns: now,
        };
        if lane.in_service.is_none() && lane.queue.is_empty() {
            start_service(
                lane,
                bank,
                &self.bank_config.faults,
                &mut self.events,
                queued,
                now,
            );
        } else {
            lane.flush_occupancy(now);
            lane.queue.admit(queued);
            lane.stats.max_depth = lane.stats.max_depth.max(lane.queue.len() as u64);
        }
    }

    /// A finished array access claims its group and channel buses: the
    /// transfer starts when both are free, holds both for the full burst,
    /// and completes the transaction when it ends.
    fn claim_buses(&mut self, bank: usize, now: f64) {
        let coord = self.config.topology.coord(bank);
        let group_slot = coord.rank * self.config.topology.groups + coord.group;
        let start = now
            .max(self.group_bus_free[group_slot])
            .max(self.channel_bus_free);
        let burst_ns = self.config.bus.group_bus_ns + self.config.bus.channel_bus_ns;
        let done = start + burst_ns;
        self.stats.bus_wait_ns += start - now;
        self.stats.bus_busy_ns += burst_ns;
        self.group_bus_free[group_slot] = done;
        self.channel_bus_free = done;
        self.events.schedule(done, Event::Complete { bank });
    }

    /// Retires the completed transaction and starts the bank's next one.
    fn complete(&mut self, banks: &mut BTreeMap<usize, Bank>, bank: usize, now: f64) {
        let lane = self.lanes.get_mut(&bank).expect("completion without lane");
        let served = lane.in_service.take().expect("completion without service");
        lane.stats.completed += 1;
        lane.stats.sojourn.observe(now - served.queued.arrival_ns);
        self.stats.completed += 1;
        self.completed += 1;
        self.outstanding -= 1;
        self.end_ns = self.end_ns.max(now);
        let bank_state = banks.get_mut(&bank).expect("completion without bank");
        try_dispatch(
            lane,
            bank_state,
            &self.bank_config.faults,
            &mut self.events,
            self.config.policy,
            now,
        );
    }

    /// Flushes per-lane occupancy integrals and folds this run's counters
    /// into the channel's persistent state.
    fn finish(mut self, state: &mut ChannelState) {
        for (index, lane) in &mut self.lanes {
            debug_assert!(lane.queue.is_empty() && lane.in_service.is_none());
            lane.flush_occupancy(self.end_ns);
            lane.stats.horizon_ns = self.end_ns;
            state.queues.entry(*index).or_default().merge(&lane.stats);
        }
        self.stats.max_outstanding = self.max_outstanding;
        self.stats.horizon_ns = self.end_ns;
        state.stats.merge(&self.stats);
        state.last_end_ns = self.end_ns;
        state.last_completed = self.completed;
    }
}

/// One channel's event loop, serial or on its own worker thread — the code
/// path is the same either way, which is the whole determinism argument.
fn run_channel(
    config: &ChipConfig,
    bank_config: &ControllerConfig,
    channel: usize,
    work: ChannelWork<'_>,
    state: &mut ChannelState,
) {
    let mut sim = ChannelSim::new(config, bank_config, channel);
    let banks = &mut state.banks;

    let (trace, source): (&[(usize, Transaction)], Option<&ClosedLoopSource>) = match &work {
        ChannelWork::Trace(txns) => (txns.as_slice(), None),
        ChannelWork::Closed(source) => (&[], Some(source)),
    };
    let mut source_rng: Option<StdRng> = source.map(|s| s.rng(channel));
    let mut cursor = 0usize;
    let mut issued = 0usize;
    let mut throttled = false;

    if let Some((_, first)) = trace.first() {
        sim.events.schedule(first.arrival_ns as f64, Event::Arrive);
    }
    if source.is_some_and(|s| s.ops_per_channel > 0) {
        sim.events.schedule(0.0, Event::Issue);
    }

    while let Some((now, event)) = sim.events.pop() {
        match event {
            Event::Arrive => {
                let (trace_index, txn) = trace[cursor];
                cursor += 1;
                sim.offer(banks, txn, trace_index, now);
                if let Some((_, next)) = trace.get(cursor) {
                    // Arrivals are pre-sorted; the max() only guards float
                    // identity for equal timestamps.
                    sim.events
                        .schedule((next.arrival_ns as f64).max(now), Event::Arrive);
                }
            }
            Event::Issue => {
                let source = source.expect("issue event without a source");
                let rng = source_rng.as_mut().expect("issue event without a stream");
                if sim.outstanding >= source.window {
                    // Window full: the source goes quiet and waits for a
                    // completion to wake it — backpressure throttles issue.
                    throttled = true;
                    sim.stats.source_throttled += 1;
                    continue;
                }
                let txn = source.next_txn(&sim.geometry, channel, rng);
                sim.offer(banks, txn, issued, now);
                issued += 1;
                if issued < source.ops_per_channel {
                    sim.events
                        .schedule(now + source.next_think_ns(rng), Event::Issue);
                }
            }
            Event::BankDone { bank } => sim.claim_buses(bank, now),
            Event::Complete { bank } => {
                sim.complete(banks, bank, now);
                if throttled {
                    let source = source.expect("throttled without a source");
                    if issued < source.ops_per_channel {
                        throttled = false;
                        let rng = source_rng.as_mut().expect("throttled without a stream");
                        sim.events
                            .schedule(now + source.next_think_ns(rng), Event::Issue);
                    }
                }
            }
        }
    }
    sim.finish(state);
}

/// Runs `Bank::execute` for `queued` and schedules the bus claim at `now +
/// array service time` (the service time is whatever the bank actually
/// charged, read off its busy-time accumulator — same convention as the
/// scheduler frontend).
fn start_service(
    lane: &mut Lane,
    bank: &mut Bank,
    faults: &FaultPlan,
    events: &mut EventQueue<Event>,
    queued: Queued,
    now: f64,
) {
    lane.stats.wait_ns.push(now - queued.admit_ns);
    let busy_before = bank.telemetry().busy_time;
    bank.execute(&queued.txn, faults);
    let service_ns = (bank.telemetry().busy_time - busy_before).get() * 1e9;
    events.schedule(
        now + service_ns,
        Event::BankDone {
            bank: queued.txn.bank,
        },
    );
    lane.in_service = Some(InService {
        queued,
        start_ns: now,
    });
}

/// If the bank is idle and has waiting work, picks the next transaction per
/// `policy` and starts serving it.
fn try_dispatch(
    lane: &mut Lane,
    bank: &mut Bank,
    faults: &FaultPlan,
    events: &mut EventQueue<Event>,
    policy: Policy,
    now: f64,
) {
    if lane.in_service.is_some() {
        return;
    }
    let Some(index) = policy.choose(&mut lane.queue) else {
        return;
    };
    lane.flush_occupancy(now);
    let queued = lane.queue.take(index);
    start_service(lane, bank, faults, events, queued, now);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::Trace;
    use crate::workload::Workload;
    use rand::SeedableRng;

    fn small_chip(kind: SchemeKind) -> Chip {
        Chip::new(ChipConfig::small(kind, Topology::new(2, 1, 2, 2)).with_seed(7))
    }

    #[test]
    fn closed_loop_serves_every_issue_and_respects_the_window() {
        let source = ClosedLoopSource::read_mostly(400, 3);
        let mut chip = small_chip(SchemeKind::Nondestructive);
        let run = chip.run_closed_loop(&source, ShardDispatch::Serial);
        assert_eq!(run.completed, 2 * 400);
        assert!(run.makespan_ns > 0.0);
        assert!(run.ops_per_second() > 0.0);
        for channel in &run.telemetry.channels {
            assert_eq!(channel.issued, 400);
            assert_eq!(channel.completed, 400);
            assert!(
                channel.max_outstanding <= 3,
                "window must bound outstanding, saw {}",
                channel.max_outstanding
            );
        }
    }

    #[test]
    fn sharded_equals_serial_closed_loop() {
        for kind in SchemeKind::ALL {
            let config = ChipConfig::small(kind, Topology::new(3, 1, 2, 2)).with_seed(11);
            let source = ClosedLoopSource::read_mostly(300, 4);
            let mut serial = Chip::new(config.clone());
            let mut sharded = Chip::new(config);
            let a = serial.run_closed_loop(&source, ShardDispatch::Serial);
            let b = sharded.run_closed_loop(&source, ShardDispatch::Sharded);
            assert_eq!(a, b, "{kind}");
            assert_eq!(serial.stored_state(), sharded.stored_state(), "{kind}");
        }
    }

    #[test]
    fn trace_replay_is_sharded_deterministically() {
        let config = ChipConfig::small(SchemeKind::Nondestructive, Topology::new(2, 1, 2, 2));
        let geometry = config.geometry();
        let trace = Workload::Uniform { read_fraction: 0.7 }.generate_physical(
            &geometry,
            InterleavePolicy::ChannelStriped,
            800,
            &mut StdRng::seed_from_u64(3),
        );
        let mut serial = Chip::new(config.clone());
        let mut sharded = Chip::new(config);
        let a = serial.run_trace(&trace, ShardDispatch::Serial);
        let b = sharded.run_trace(&trace, ShardDispatch::Sharded);
        assert_eq!(a, b);
        assert_eq!(a.completed, 800);
        assert_eq!(a.telemetry.transactions(), 800);
    }

    #[test]
    fn lazy_materialisation_allocates_only_touched_banks() {
        // 64 banks addressable, traffic pinned to channel 0 bank 0.
        let config = ChipConfig::small(SchemeKind::Nondestructive, Topology::new(4, 2, 4, 2));
        let mut chip = Chip::new(config);
        let mut trace = Trace::new();
        for _ in 0..10 {
            trace.push(Transaction::read(0, stt_array::Address::new(0, 0)));
        }
        let run = chip.run_trace(&trace, ShardDispatch::Serial);
        assert_eq!(chip.resident_banks(), 1);
        assert_eq!(run.telemetry.resident_banks(), 1);
        assert_eq!(run.telemetry.topology.total_banks(), 64);
    }

    #[test]
    fn zero_bus_time_means_completion_at_bank_done() {
        let config =
            ChipConfig::small(SchemeKind::Nondestructive, Topology::flat(2)).with_bus(BusTiming {
                group_bus_ns: 0.0,
                channel_bus_ns: 0.0,
            });
        let mut chip = Chip::new(config);
        let run = chip.run_closed_loop(
            &ClosedLoopSource::read_mostly(100, 2),
            ShardDispatch::Serial,
        );
        assert_eq!(run.completed, 100);
        assert_eq!(run.telemetry.channels[0].bus_busy_ns, 0.0);
        assert_eq!(run.telemetry.channels[0].bus_wait_ns, 0.0);
    }

    #[test]
    fn bus_contention_delays_completions() {
        // One bank group, bus burst comparable to service time, a wide-open
        // window: several banks finish together and serialize on the bus.
        let config = ChipConfig::small(SchemeKind::Nondestructive, Topology::new(1, 1, 1, 4))
            .with_bus(BusTiming {
                group_bus_ns: 10.0,
                channel_bus_ns: 5.0,
            });
        let source = ClosedLoopSource::read_mostly(400, 16).with_mean_think_ns(1.0);
        let mut chip = Chip::new(config);
        let run = chip.run_closed_loop(&source, ShardDispatch::Serial);
        let channel = &run.telemetry.channels[0];
        assert!(
            channel.bus_wait_ns > 0.0,
            "saturating four banks over one bus must queue transfers"
        );
        assert!(channel.mean_bus_wait_ns() > 0.0);
    }

    #[test]
    fn per_level_rollups_partition_the_chip() {
        let source = ClosedLoopSource::read_mostly(200, 4);
        let mut chip = small_chip(SchemeKind::Nondestructive);
        let run = chip.run_closed_loop(&source, ShardDispatch::Serial);
        let total = run.telemetry.aggregate();
        let by_channel = run.telemetry.by_channel();
        let by_rank = run.telemetry.by_rank();
        let by_group = run.telemetry.by_group();
        for rollup in [
            by_channel.values().map(|b| b.reads).sum::<u64>(),
            by_rank.values().map(|b| b.reads).sum::<u64>(),
            by_group.values().map(|b| b.reads).sum::<u64>(),
        ] {
            assert_eq!(rollup, total.reads, "every level must partition the chip");
        }
        assert_eq!(by_channel.len(), 2);
        assert_eq!(by_group.len(), 4);
    }

    #[test]
    fn state_persists_across_runs() {
        let source = ClosedLoopSource::read_mostly(100, 2);
        let mut chip = small_chip(SchemeKind::Nondestructive);
        chip.run_closed_loop(&source, ShardDispatch::Serial);
        let second = chip.run_closed_loop(&source, ShardDispatch::Serial);
        assert_eq!(second.completed, 200, "run counters are per-run");
        assert_eq!(
            second.telemetry.transactions(),
            400,
            "telemetry accumulates"
        );
    }

    #[test]
    #[should_panic(expected = "targets bank")]
    fn out_of_range_bank_panics() {
        let mut chip = small_chip(SchemeKind::Nondestructive);
        let mut trace = Trace::new();
        trace.push(Transaction::read(64, stt_array::Address::new(0, 0)));
        chip.run_trace(&trace, ShardDispatch::Serial);
    }
}
