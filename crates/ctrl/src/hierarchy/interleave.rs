//! Address interleaving: how a linear host address maps onto the hierarchy.
//!
//! A controller advertises one flat address space (`0..geometry.cells()`);
//! an [`Interleave`] policy decides which physical cell each linear address
//! lands on. The mapping is the lever that trades locality against
//! parallelism: consecutive addresses can stay inside one bank (maximal
//! row locality, zero bank parallelism) or stripe across channels (maximal
//! parallelism, every access a different bus). Every policy must be a
//! **bijection** — `decode ∘ encode = identity` and no two linear addresses
//! alias the same cell — which the integration suite property-tests over
//! random geometries.
//!
//! Three policies ship:
//!
//! * [`Linear`] — bank-major: address space filled one bank at a time.
//!   Sequential traffic hammers a single bank and its group bus.
//! * [`BankXor`] — the classic row-XOR-bank swizzle: within a channel the
//!   serving bank is permuted by the row bits, so row-sequential streams
//!   that would reuse one bank spread across the channel's bank pool.
//! * [`ChannelStriped`] — consecutive addresses rotate through channels
//!   first, recruiting every independent channel (and worker shard) even
//!   for small hot sets.

use serde::{Deserialize, Serialize};
use stt_array::Address;

use super::topology::{Geometry, PhysAddr};

/// A bijective mapping between linear addresses and physical locations.
///
/// Implementations must satisfy, for every `geometry` and every
/// `linear < geometry.cells()`:
///
/// * `encode(geometry, decode(geometry, linear)) == linear`;
/// * `decode` never yields the same [`PhysAddr`] for two distinct linear
///   addresses (which follows from the first law plus range preservation).
pub trait Interleave {
    /// Short machine-readable name for table/CSV rows.
    fn name(&self) -> &'static str;

    /// Maps a linear address to its physical location.
    ///
    /// # Panics
    ///
    /// Panics if `linear >= geometry.cells()`.
    fn decode(&self, geometry: &Geometry, linear: usize) -> PhysAddr;

    /// Maps a physical location back to its linear address.
    ///
    /// # Panics
    ///
    /// Panics if `phys` is outside the geometry.
    fn encode(&self, geometry: &Geometry, phys: PhysAddr) -> usize;
}

/// Splits a linear address into `(global flat bank, row, col)` bank-major.
fn split_bank_major(geometry: &Geometry, linear: usize) -> (usize, usize, usize) {
    assert!(
        linear < geometry.cells(),
        "linear address {linear} outside geometry ({} cells)",
        geometry.cells()
    );
    let per_bank = geometry.cells_per_bank();
    let flat = linear / per_bank;
    let offset = linear % per_bank;
    (flat, offset / geometry.cols, offset % geometry.cols)
}

/// Joins `(global flat bank, row, col)` back into a bank-major linear
/// address.
fn join_bank_major(geometry: &Geometry, flat: usize, addr: Address) -> usize {
    assert!(
        addr.row < geometry.rows && addr.col < geometry.cols,
        "address {addr:?} outside the {}x{} bank array",
        geometry.rows,
        geometry.cols
    );
    flat * geometry.cells_per_bank() + addr.row * geometry.cols + addr.col
}

/// Bank-major filling: linear address `a` lives in global bank
/// `a / cells_per_bank` at row-major offset `a % cells_per_bank`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Linear;

impl Interleave for Linear {
    fn name(&self) -> &'static str {
        "linear"
    }

    fn decode(&self, geometry: &Geometry, linear: usize) -> PhysAddr {
        let (flat, row, col) = split_bank_major(geometry, linear);
        PhysAddr {
            coord: geometry.topology.coord(flat),
            addr: Address::new(row, col),
        }
    }

    fn encode(&self, geometry: &Geometry, phys: PhysAddr) -> usize {
        join_bank_major(geometry, geometry.topology.flatten(phys.coord), phys.addr)
    }
}

/// Row-XOR-bank swizzle within each channel.
///
/// The linear address decomposes exactly like [`Linear`], but the serving
/// bank *within the channel* is permuted by the row index: for a
/// power-of-two per-channel bank count the permutation is the textbook
/// `bank ^ (row & (n-1))` XOR swizzle; otherwise it falls back to the
/// additive rotation `(bank + row) mod n`, which is equally bijective for
/// any `n`. Either way, row-sequential streams that [`Linear`] would pin to
/// one bank rotate across the channel's whole bank pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankXor;

impl BankXor {
    fn swizzle(per_channel: usize, local_bank: usize, row: usize) -> usize {
        if per_channel.is_power_of_two() {
            local_bank ^ (row & (per_channel - 1))
        } else {
            (local_bank + row) % per_channel
        }
    }

    fn unswizzle(per_channel: usize, swizzled: usize, row: usize) -> usize {
        if per_channel.is_power_of_two() {
            // XOR is an involution.
            swizzled ^ (row & (per_channel - 1))
        } else {
            (swizzled + per_channel - row % per_channel) % per_channel
        }
    }
}

impl Interleave for BankXor {
    fn name(&self) -> &'static str {
        "bank-xor"
    }

    fn decode(&self, geometry: &Geometry, linear: usize) -> PhysAddr {
        let (flat, row, col) = split_bank_major(geometry, linear);
        let per_channel = geometry.topology.banks_per_channel();
        let channel = flat / per_channel;
        let local = Self::swizzle(per_channel, flat % per_channel, row);
        PhysAddr {
            coord: geometry.topology.coord(channel * per_channel + local),
            addr: Address::new(row, col),
        }
    }

    fn encode(&self, geometry: &Geometry, phys: PhysAddr) -> usize {
        let per_channel = geometry.topology.banks_per_channel();
        let flat = geometry.topology.flatten(phys.coord);
        let channel = flat / per_channel;
        let local = Self::unswizzle(per_channel, flat % per_channel, phys.addr.row);
        join_bank_major(geometry, channel * per_channel + local, phys.addr)
    }
}

/// Cell-granular channel striping: consecutive linear addresses rotate
/// through the channels, then fill each channel bank-major. Even a small
/// hot set recruits every channel — and therefore every worker shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelStriped;

impl Interleave for ChannelStriped {
    fn name(&self) -> &'static str {
        "channel-striped"
    }

    fn decode(&self, geometry: &Geometry, linear: usize) -> PhysAddr {
        assert!(
            linear < geometry.cells(),
            "linear address {linear} outside geometry ({} cells)",
            geometry.cells()
        );
        let channels = geometry.topology.channels;
        let channel = linear % channels;
        let within = linear / channels;
        let per_bank = geometry.cells_per_bank();
        let local_bank = within / per_bank;
        let offset = within % per_bank;
        let flat = channel * geometry.topology.banks_per_channel() + local_bank;
        PhysAddr {
            coord: geometry.topology.coord(flat),
            addr: Address::new(offset / geometry.cols, offset % geometry.cols),
        }
    }

    fn encode(&self, geometry: &Geometry, phys: PhysAddr) -> usize {
        let per_channel = geometry.topology.banks_per_channel();
        let flat = geometry.topology.flatten(phys.coord);
        let (channel, local_bank) = (flat / per_channel, flat % per_channel);
        let offset = join_bank_major(geometry, local_bank, phys.addr);
        offset * geometry.topology.channels + channel
    }
}

/// The interleaving policies the harness sweeps, as a plain enum so configs
/// stay `Copy`/serde-friendly while still dispatching through the
/// [`Interleave`] trait objects behind it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InterleavePolicy {
    /// Bank-major filling (see [`Linear`]).
    Linear,
    /// Row-XOR-bank swizzle within each channel (see [`BankXor`]).
    BankXor,
    /// Cell-granular channel rotation (see [`ChannelStriped`]).
    ChannelStriped,
}

impl InterleavePolicy {
    /// Every shipped policy, in sweep order.
    pub const ALL: [InterleavePolicy; 3] = [
        InterleavePolicy::Linear,
        InterleavePolicy::BankXor,
        InterleavePolicy::ChannelStriped,
    ];

    /// The trait object this variant names.
    #[must_use]
    pub fn as_interleave(self) -> &'static dyn Interleave {
        match self {
            InterleavePolicy::Linear => &Linear,
            InterleavePolicy::BankXor => &BankXor,
            InterleavePolicy::ChannelStriped => &ChannelStriped,
        }
    }

    /// Short machine-readable name for table/CSV rows.
    #[must_use]
    pub fn name(self) -> &'static str {
        self.as_interleave().name()
    }
}

impl Interleave for InterleavePolicy {
    fn name(&self) -> &'static str {
        (*self).name()
    }

    fn decode(&self, geometry: &Geometry, linear: usize) -> PhysAddr {
        self.as_interleave().decode(geometry, linear)
    }

    fn encode(&self, geometry: &Geometry, phys: PhysAddr) -> usize {
        self.as_interleave().encode(geometry, phys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::Topology;

    fn geometries() -> Vec<Geometry> {
        vec![
            Geometry::new(Topology::new(2, 1, 2, 2), 8, 8),
            Geometry::new(Topology::new(3, 2, 3, 5), 4, 8), // nothing power-of-two
            Geometry::new(Topology::flat(1), 2, 2),
        ]
    }

    #[test]
    fn every_policy_round_trips_every_address() {
        for geometry in geometries() {
            for policy in InterleavePolicy::ALL {
                for linear in 0..geometry.cells() {
                    let phys = policy.decode(&geometry, linear);
                    assert_eq!(
                        policy.encode(&geometry, phys),
                        linear,
                        "{}: {geometry:?} @ {linear}",
                        policy.name()
                    );
                }
            }
        }
    }

    #[test]
    fn every_policy_is_alias_free() {
        for geometry in geometries() {
            for policy in InterleavePolicy::ALL {
                let mut seen = std::collections::HashSet::new();
                for linear in 0..geometry.cells() {
                    let phys = policy.decode(&geometry, linear);
                    assert!(
                        seen.insert((phys.coord, phys.addr.row, phys.addr.col)),
                        "{}: linear {linear} aliases an earlier address",
                        policy.name()
                    );
                }
            }
        }
    }

    #[test]
    fn channel_striping_rotates_channels_per_cell() {
        let geometry = Geometry::new(Topology::new(4, 1, 2, 2), 8, 8);
        for linear in 0..32 {
            let phys = ChannelStriped.decode(&geometry, linear);
            assert_eq!(phys.coord.channel, linear % 4);
        }
    }

    #[test]
    fn linear_keeps_sequential_addresses_in_one_bank() {
        let geometry = Geometry::new(Topology::new(2, 1, 2, 2), 8, 8);
        let first = Linear.decode(&geometry, 0).coord;
        for linear in 0..geometry.cells_per_bank() {
            assert_eq!(Linear.decode(&geometry, linear).coord, first);
        }
        assert_ne!(
            Linear.decode(&geometry, geometry.cells_per_bank()).coord,
            first
        );
    }

    #[test]
    fn bank_xor_spreads_row_sequential_streams() {
        // Walk column 0 down the rows of what Linear would call "bank 0":
        // the XOR swizzle must visit more than one bank of the channel.
        let geometry = Geometry::new(Topology::new(1, 1, 2, 2), 8, 8);
        let mut banks = std::collections::HashSet::new();
        for row in 0..geometry.rows {
            let linear = row * geometry.cols;
            let coord = BankXor.decode(&geometry, linear).coord;
            assert_eq!(coord.channel, 0);
            banks.insert((coord.rank, coord.group, coord.bank));
        }
        assert!(
            banks.len() > 1,
            "row-sequential traffic must rotate banks, saw {banks:?}"
        );
    }

    #[test]
    fn bank_xor_swizzle_inverts_for_any_bank_count() {
        for per_channel in 1..=9usize {
            for row in 0..20 {
                for bank in 0..per_channel {
                    let swizzled = BankXor::swizzle(per_channel, bank, row);
                    assert!(swizzled < per_channel);
                    assert_eq!(BankXor::unswizzle(per_channel, swizzled, row), bank);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside geometry")]
    fn out_of_range_linear_addresses_panic() {
        let geometry = Geometry::new(Topology::flat(2), 4, 4);
        let _ = Linear.decode(&geometry, geometry.cells());
    }
}
