//! The full-chip memory hierarchy: channels × ranks × bank groups × banks.
//!
//! The flat [`Controller`](crate::Controller) answers what traffic costs on
//! a handful of shared-nothing banks; this module scales that up to a chip.
//! Its four pieces:
//!
//! * [`topology`] — the level counts ([`Topology`]), bank coordinates
//!   ([`BankCoord`]), the full address-space shape ([`Geometry`]), and the
//!   `CxRxGxB` geometry flag parser with typed errors.
//! * [`interleave`] — pluggable, provably bijective mappings from linear
//!   host addresses to physical `(bank, cell)` locations: [`Linear`],
//!   [`BankXor`], [`ChannelStriped`] behind the [`Interleave`] trait.
//! * [`source`] — the closed-loop, window-limited traffic source
//!   ([`ClosedLoopSource`]) whose issue rate *reacts* to backpressure, so a
//!   window sweep locates the throughput/latency knee.
//! * [`chip`] — the engine ([`Chip`]): per-channel event loops with shared
//!   group/channel data buses, lazy bank materialisation, and channel-
//!   sharded dispatch that is bit-identical to serial.
//!
//! # Determinism
//!
//! Channels share nothing: every bank's RNG streams derive from `(chip
//! seed, global bank index)` and every source stream from `(source seed,
//! channel)`, so [`ShardDispatch::Sharded`] (one worker thread per channel)
//! produces **equal** telemetry and stored state to
//! [`ShardDispatch::Serial`] — property-tested across schemes, policies and
//! fault plans.

pub mod chip;
pub mod interleave;
pub mod source;
pub mod topology;

pub use chip::{BusTiming, Chip, ChipConfig, ChipRun, ChipTelemetry, ShardDispatch};
pub use interleave::{BankXor, ChannelStriped, Interleave, InterleavePolicy, Linear};
pub use source::ClosedLoopSource;
pub use topology::{
    BankCoord, Geometry, GeometryParseError, GeometryParseErrorKind, PhysAddr, Topology,
};
