//! Chip topology: channels × ranks × bank groups × banks.
//!
//! The flat [`Controller`](crate::Controller) treats banks as an unordered
//! pool; a real chip arranges them in a hierarchy whose *shared* resources
//! are what shape behaviour at scale: banks in a group share a data bus,
//! groups in a rank share the rank's slice of the channel, ranks share a
//! channel, and channels share nothing — which is exactly why the
//! [`Chip`](crate::hierarchy::Chip) engine shards its event loops at
//! channel granularity.
//!
//! A [`Topology`] is purely structural (counts per level); pairing it with
//! per-bank array dimensions gives a [`Geometry`], the address space the
//! [`Interleave`](crate::hierarchy::Interleave) policies map linear
//! addresses into. Topologies parse from the compact `CxRxGxB` notation
//! (`"2x1x4x4"` = 2 channels × 1 rank × 4 groups × 4 banks), with a typed
//! [`GeometryParseError`] in the same style as
//! [`TraceParseError`](crate::txn::TraceParseError).

use std::str::FromStr;

use serde::{Deserialize, Serialize};
use stt_array::Address;

/// Counts per level of the chip hierarchy.
///
/// Every level count must be at least 1; the [`Topology::new`] constructor
/// and the `CxRxGxB` parser both enforce it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Topology {
    /// Independent channels (the sharding grain: channels share nothing).
    pub channels: usize,
    /// Ranks per channel.
    pub ranks: usize,
    /// Bank groups per rank (banks in a group share a data bus).
    pub groups: usize,
    /// Banks per bank group.
    pub banks: usize,
}

impl Topology {
    /// A validated topology.
    ///
    /// # Panics
    ///
    /// Panics if any level count is zero.
    #[must_use]
    pub fn new(channels: usize, ranks: usize, groups: usize, banks: usize) -> Self {
        let topology = Self {
            channels,
            ranks,
            groups,
            banks,
        };
        topology.validate();
        topology
    }

    /// A degenerate single-channel, single-rank, single-group topology of
    /// `banks` banks — the shape every pre-hierarchy controller had.
    #[must_use]
    pub fn flat(banks: usize) -> Self {
        Self::new(1, 1, 1, banks)
    }

    /// The default full-chip topology the traffic harness sweeps: 2
    /// channels × 1 rank × 2 bank groups × 2 banks (8 paper-scale banks).
    #[must_use]
    pub fn date2010() -> Self {
        Self::new(2, 1, 2, 2)
    }

    fn validate(&self) {
        assert!(
            self.channels > 0 && self.ranks > 0 && self.groups > 0 && self.banks > 0,
            "every topology level needs at least one member, got {self}"
        );
    }

    /// Banks per channel (`ranks × groups × banks`).
    #[must_use]
    pub fn banks_per_channel(&self) -> usize {
        self.ranks * self.groups * self.banks
    }

    /// Total banks across the chip.
    #[must_use]
    pub fn total_banks(&self) -> usize {
        self.channels * self.banks_per_channel()
    }

    /// Flattens a coordinate to a global bank index (channel-major, then
    /// rank, group, bank) — the index the per-bank RNG stream derives from,
    /// so a bank's random sequence is a function of *where it sits*, never
    /// of which thread serves it or when it was materialised.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate field is out of range.
    #[must_use]
    pub fn flatten(&self, coord: BankCoord) -> usize {
        assert!(
            coord.channel < self.channels
                && coord.rank < self.ranks
                && coord.group < self.groups
                && coord.bank < self.banks,
            "coordinate {coord:?} outside topology {self}"
        );
        ((coord.channel * self.ranks + coord.rank) * self.groups + coord.group) * self.banks
            + coord.bank
    }

    /// Decomposes a global bank index back into its coordinate.
    ///
    /// # Panics
    ///
    /// Panics if `flat` is out of range.
    #[must_use]
    pub fn coord(&self, flat: usize) -> BankCoord {
        assert!(
            flat < self.total_banks(),
            "bank {flat} outside topology {self} ({} banks)",
            self.total_banks()
        );
        let bank = flat % self.banks;
        let rest = flat / self.banks;
        let group = rest % self.groups;
        let rest = rest / self.groups;
        let rank = rest % self.ranks;
        let channel = rest / self.ranks;
        BankCoord {
            channel,
            rank,
            group,
            bank,
        }
    }
}

impl std::fmt::Display for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}x{}x{}x{}",
            self.channels, self.ranks, self.groups, self.banks
        )
    }
}

/// A malformed `CxRxGxB` geometry string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeometryParseError {
    /// What was wrong with it.
    pub kind: GeometryParseErrorKind,
}

/// The ways a `CxRxGxB` geometry string can be malformed. Each variant
/// carries the offending text verbatim, mirroring
/// [`TraceParseErrorKind`](crate::txn::TraceParseErrorKind).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeometryParseErrorKind {
    /// Wrong number of `x`-separated fields (need exactly four).
    FieldCount {
        /// How many fields the string actually had.
        got: usize,
    },
    /// A level count failed to parse as a positive integer.
    BadCount {
        /// Which level (`"channels"`, `"ranks"`, `"groups"`, `"banks"`).
        level: &'static str,
        /// The text that failed to parse.
        value: String,
    },
    /// A level count parsed but was zero.
    ZeroCount {
        /// Which level was zero.
        level: &'static str,
    },
}

impl GeometryParseErrorKind {
    /// The hierarchy level the error anchors to
    /// ([`GeometryParseErrorKind::FieldCount`] has none).
    #[must_use]
    pub fn level(&self) -> Option<&'static str> {
        match self {
            GeometryParseErrorKind::FieldCount { .. } => None,
            GeometryParseErrorKind::BadCount { level, .. }
            | GeometryParseErrorKind::ZeroCount { level } => Some(level),
        }
    }
}

impl std::fmt::Display for GeometryParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "geometry: ")?;
        match &self.kind {
            GeometryParseErrorKind::FieldCount { got } => {
                write!(f, "expected CxRxGxB (4 fields), got {got}")
            }
            GeometryParseErrorKind::BadCount { level, value } => {
                write!(f, "bad {level} count {value:?}")
            }
            GeometryParseErrorKind::ZeroCount { level } => {
                write!(f, "{level} count must be at least 1")
            }
        }
    }
}

impl std::error::Error for GeometryParseError {}

impl FromStr for Topology {
    type Err = GeometryParseError;

    /// Parses the `CxRxGxB` notation (`"4x2x4x4"`), case-insensitive on the
    /// separator.
    fn from_str(text: &str) -> Result<Self, Self::Err> {
        const LEVELS: [&str; 4] = ["channels", "ranks", "groups", "banks"];
        let err = |kind| GeometryParseError { kind };
        let fields: Vec<&str> = text.split(['x', 'X']).collect();
        if fields.len() != 4 {
            return Err(err(GeometryParseErrorKind::FieldCount {
                got: fields.len(),
            }));
        }
        let mut counts = [0usize; 4];
        for (slot, (field, level)) in counts.iter_mut().zip(fields.iter().zip(LEVELS)) {
            let value: usize = field.trim().parse().map_err(|_| {
                err(GeometryParseErrorKind::BadCount {
                    level,
                    value: (*field).to_string(),
                })
            })?;
            if value == 0 {
                return Err(err(GeometryParseErrorKind::ZeroCount { level }));
            }
            *slot = value;
        }
        Ok(Topology::new(counts[0], counts[1], counts[2], counts[3]))
    }
}

/// The coordinate of one bank within a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BankCoord {
    /// Channel index (`0..channels`).
    pub channel: usize,
    /// Rank index within the channel (`0..ranks`).
    pub rank: usize,
    /// Bank-group index within the rank (`0..groups`).
    pub group: usize,
    /// Bank index within the group (`0..banks`).
    pub bank: usize,
}

/// A full physical location: which bank, and which cell within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PhysAddr {
    /// The bank's coordinate in the hierarchy.
    pub coord: BankCoord,
    /// The cell within that bank.
    pub addr: Address,
}

/// A [`Topology`] paired with per-bank array dimensions: the complete
/// linear address space an [`Interleave`](crate::hierarchy::Interleave)
/// policy maps into physical locations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Geometry {
    /// Structural counts per hierarchy level.
    pub topology: Topology,
    /// Rows per bank.
    pub rows: usize,
    /// Columns per bank.
    pub cols: usize,
}

impl Geometry {
    /// A validated geometry.
    ///
    /// # Panics
    ///
    /// Panics if either array dimension is zero.
    #[must_use]
    pub fn new(topology: Topology, rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "banks need non-empty arrays");
        Self {
            topology,
            rows,
            cols,
        }
    }

    /// Cells per bank.
    #[must_use]
    pub fn cells_per_bank(&self) -> usize {
        self.rows * self.cols
    }

    /// Total addressable cells across the chip. A multi-GB address space is
    /// *addressable* through this geometry whether or not any bank has been
    /// materialised — lazy allocation is the engine's job, not the address
    /// map's.
    #[must_use]
    pub fn cells(&self) -> usize {
        self.topology.total_banks() * self.cells_per_bank()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_and_coord_are_inverse() {
        let topology = Topology::new(3, 2, 4, 5);
        for flat in 0..topology.total_banks() {
            let coord = topology.coord(flat);
            assert_eq!(topology.flatten(coord), flat);
        }
        assert_eq!(topology.total_banks(), 3 * 2 * 4 * 5);
        assert_eq!(topology.banks_per_channel(), 2 * 4 * 5);
    }

    #[test]
    fn flat_topology_matches_legacy_bank_indexing() {
        let topology = Topology::flat(8);
        for bank in 0..8 {
            let coord = topology.coord(bank);
            assert_eq!(coord.channel, 0);
            assert_eq!(coord.rank, 0);
            assert_eq!(coord.group, 0);
            assert_eq!(coord.bank, bank);
        }
    }

    #[test]
    fn parse_round_trips_display() {
        let topology: Topology = "4x2x4x4".parse().unwrap();
        assert_eq!(topology, Topology::new(4, 2, 4, 4));
        assert_eq!(topology.to_string().parse::<Topology>(), Ok(topology));
        assert_eq!("2X1X2X2".parse::<Topology>(), Ok(Topology::date2010()));
    }

    #[test]
    fn parse_errors_are_typed() {
        let error = "4x2x4".parse::<Topology>().unwrap_err();
        assert_eq!(error.kind, GeometryParseErrorKind::FieldCount { got: 3 });
        assert_eq!(error.kind.level(), None);
        assert_eq!(
            error.to_string(),
            "geometry: expected CxRxGxB (4 fields), got 3"
        );

        let error = "4xtwox4x4".parse::<Topology>().unwrap_err();
        assert_eq!(
            error.kind,
            GeometryParseErrorKind::BadCount {
                level: "ranks",
                value: "two".to_string(),
            }
        );
        assert_eq!(error.kind.level(), Some("ranks"));

        let error = "4x2x0x4".parse::<Topology>().unwrap_err();
        assert_eq!(
            error.kind,
            GeometryParseErrorKind::ZeroCount { level: "groups" }
        );
        assert_eq!(
            error.to_string(),
            "geometry: groups count must be at least 1"
        );
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn zero_level_topologies_are_rejected() {
        let _ = Topology::new(1, 0, 1, 1);
    }

    #[test]
    #[should_panic(expected = "outside topology")]
    fn out_of_range_coords_are_rejected() {
        let topology = Topology::new(2, 1, 2, 2);
        let _ = topology.flatten(BankCoord {
            channel: 2,
            rank: 0,
            group: 0,
            bank: 0,
        });
    }

    #[test]
    fn geometry_counts_cells() {
        let geometry = Geometry::new(Topology::new(2, 1, 2, 2), 8, 8);
        assert_eq!(geometry.cells_per_bank(), 64);
        assert_eq!(geometry.cells(), 8 * 64);
    }
}
