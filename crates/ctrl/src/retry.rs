//! Read-retry: the controller-side answer to marginal senses.
//!
//! A sense whose comparator input lands inside the amplifier's uncertainty
//! band is a coin flip — the same bits the Fig. 11 threshold experiment
//! counts as yield losses. A memory controller does not have to accept the
//! coin flip: it can re-sense. [`RetryPolicy`] accepts the first attempt
//! whose observed differential clears a guard band, re-senses up to a
//! bounded number of times otherwise, and falls back to the sign of the
//! mean observation when no attempt is ever confident.
//!
//! The policy **short-circuits on confidence**: a read whose first attempt
//! clears the guard band is returned untouched, so retrying can never flip
//! an already-confident read — a property the integration suite checks with
//! a proptest.

use serde::{Deserialize, Serialize};
use stt_units::Volts;

use crate::sense::Sensed;

/// When to accept a sense and when to try again.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Minimum `|observed|` for an attempt to be accepted outright.
    pub guard_band: Volts,
    /// Total sense attempts before falling back (≥ 1).
    pub max_attempts: u32,
}

impl RetryPolicy {
    /// The harness default: an 8 mV guard band (the auto-zero SA's usable
    /// threshold) and up to 3 attempts.
    #[must_use]
    pub fn date2010() -> Self {
        Self {
            guard_band: Volts::from_milli(8.0),
            max_attempts: 3,
        }
    }

    /// A policy that senses exactly once and accepts whatever it saw.
    #[must_use]
    pub fn no_retry() -> Self {
        Self {
            guard_band: Volts::ZERO,
            max_attempts: 1,
        }
    }

    /// Resolves one read by calling `sense` up to [`Self::max_attempts`]
    /// times. `sense` is invoked once per attempt, in order, and **not at
    /// all** after a confident attempt.
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts` is zero.
    pub fn resolve<F: FnMut() -> Sensed>(&self, mut sense: F) -> ReadResolution {
        assert!(self.max_attempts > 0, "need at least one sense attempt");
        let mut observed_sum = 0.0;
        for attempt in 1..=self.max_attempts {
            let sensed = sense();
            observed_sum += sensed.observed.get();
            if sensed.is_confident(self.guard_band) {
                return ReadResolution {
                    bit: sensed.bit,
                    attempts: attempt,
                    confident: true,
                };
            }
        }
        // Every attempt was marginal: majority-vote via the mean
        // observation (equal-weight averaging of the comparator inputs).
        ReadResolution {
            bit: observed_sum > 0.0,
            attempts: self.max_attempts,
            confident: false,
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::date2010()
    }
}

/// The controller's verdict on one read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReadResolution {
    /// The bit delivered to the host.
    pub bit: bool,
    /// Sense attempts consumed (1 = no retry).
    pub attempts: u32,
    /// `false` when the fallback decided — the controller would flag this
    /// read to a scrub/ECC layer.
    pub confident: bool,
}

impl ReadResolution {
    /// Retries beyond the first attempt.
    #[must_use]
    pub fn retries(&self) -> u32 {
        self.attempts - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sensed(observed_mv: f64) -> Sensed {
        Sensed {
            bit: observed_mv > 0.0,
            observed: Volts::from_milli(observed_mv),
            correct: true,
        }
    }

    #[test]
    fn confident_first_attempt_short_circuits() {
        let policy = RetryPolicy::date2010();
        let mut calls = 0;
        let resolution = policy.resolve(|| {
            calls += 1;
            sensed(20.0)
        });
        assert_eq!(calls, 1);
        assert_eq!(
            resolution,
            ReadResolution {
                bit: true,
                attempts: 1,
                confident: true
            }
        );
    }

    #[test]
    fn marginal_attempts_trigger_retries() {
        let policy = RetryPolicy::date2010();
        let mut calls = 0;
        let outcomes = [2.0, -1.0, 30.0];
        let resolution = policy.resolve(|| {
            let out = sensed(outcomes[calls]);
            calls += 1;
            out
        });
        assert_eq!(calls, 3);
        assert!(resolution.confident);
        assert!(resolution.bit);
        assert_eq!(resolution.retries(), 2);
    }

    #[test]
    fn fallback_takes_the_sign_of_the_mean() {
        let policy = RetryPolicy::date2010();
        let mut calls = 0;
        // Individually ambiguous, negative on average.
        let outcomes = [1.0, -3.0, -1.0];
        let resolution = policy.resolve(|| {
            let out = sensed(outcomes[calls]);
            calls += 1;
            out
        });
        assert_eq!(calls, 3);
        assert!(!resolution.confident);
        assert!(!resolution.bit);
        assert_eq!(resolution.attempts, 3);
    }

    #[test]
    fn no_retry_accepts_anything() {
        let policy = RetryPolicy::no_retry();
        let resolution = policy.resolve(|| sensed(0.001));
        assert_eq!(resolution.attempts, 1);
        assert!(resolution.confident);
    }
}
