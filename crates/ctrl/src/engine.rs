//! The controller engine: N banks, one trace, serial or parallel dispatch.
//!
//! Transactions are partitioned per bank in trace order; each bank then
//! serves its slice against its own array with its own RNG. Because banks
//! share nothing, the parallel dispatch (one crossbeam scoped thread per
//! bank) executes the exact same per-bank instruction-and-RNG sequence as
//! the serial one — [`Controller::run`] returns **equal** [`Telemetry`]
//! either way, which the test suite asserts outright.

use serde::{Deserialize, Serialize};
use stt_array::ArraySpec;
use stt_sense::SchemeKind;

use crate::bank::Bank;
use crate::calib::CalibConfig;
use crate::faults::{DriftPlan, FaultPlan};
use crate::reliability::EccMode;
use crate::retry::RetryPolicy;
use crate::telemetry::{LatencyBounds, Telemetry};
use crate::txn::{Transaction, TxnSource};
use crate::workload::Footprint;

/// How [`Controller::run`] drives its banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Dispatch {
    /// One bank after another, on the calling thread.
    Serial,
    /// One scoped worker thread per bank.
    Parallel,
}

/// Everything needed to build a controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Number of banks.
    pub banks: usize,
    /// Per-bank array recipe.
    pub spec: ArraySpec,
    /// Sensing scheme serving every read.
    pub kind: SchemeKind,
    /// Read-retry policy.
    pub retry: RetryPolicy,
    /// Faults to inject while serving.
    pub faults: FaultPlan,
    /// Master seed; bank `k` derives its stream from `(seed, k)`.
    pub seed: u64,
    /// Read-latency histogram binning (defaults to the historical
    /// 0–100 ns × 2 ns grid).
    #[serde(default)]
    pub latency_bounds: LatencyBounds,
    /// Error-correction layer over bank reads (defaults to none, the seed
    /// behaviour: every misread is silent).
    #[serde(default)]
    pub ecc: EccMode,
    /// Dynamic thermal/aging drift applied on each bank's busy clock
    /// (defaults to quiet: no drift, bit-identical to pre-drift builds).
    #[serde(default)]
    pub drift: DriftPlan,
    /// Inline per-bank calibration daemon: each bank evaluates the trip
    /// condition itself every [`CalibConfig::check_reads`] demand reads
    /// (defaults to off). Mutually exclusive with the frontend daemon
    /// ([`FrontendConfig::with_calib`](crate::sched::FrontendConfig::with_calib)).
    #[serde(default)]
    pub calib: Option<CalibConfig>,
}

impl ControllerConfig {
    /// Paper-scale banks (16 kb each) under `kind`, no faults.
    #[must_use]
    pub fn date2010(kind: SchemeKind, banks: usize) -> Self {
        Self {
            banks,
            spec: ArraySpec::date2010_chip(),
            kind,
            retry: RetryPolicy::date2010(),
            faults: FaultPlan::none(),
            seed: 2010,
            latency_bounds: LatencyBounds::date2010(),
            ecc: EccMode::None,
            drift: DriftPlan::quiet(),
            calib: None,
        }
    }

    /// Small 8×8 banks for fast tests.
    #[must_use]
    pub fn small(kind: SchemeKind, banks: usize) -> Self {
        Self {
            spec: ArraySpec::small_test_array(),
            ..Self::date2010(kind, banks)
        }
    }

    /// Overrides the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the fault plan.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Overrides the read-latency histogram binning.
    #[must_use]
    pub fn with_latency_bounds(mut self, bounds: LatencyBounds) -> Self {
        self.latency_bounds = bounds;
        self
    }

    /// Overrides the ECC layer.
    #[must_use]
    pub fn with_ecc(mut self, ecc: EccMode) -> Self {
        self.ecc = ecc;
        self
    }

    /// Overrides the drift plan.
    #[must_use]
    pub fn with_drift(mut self, drift: DriftPlan) -> Self {
        self.drift = drift;
        self
    }

    /// Enables the inline per-bank calibration daemon.
    #[must_use]
    pub fn with_calib(mut self, calib: CalibConfig) -> Self {
        self.calib = Some(calib);
        self
    }

    /// The address space this configuration exposes, for workload
    /// generation.
    #[must_use]
    pub fn footprint(&self) -> Footprint {
        Footprint {
            banks: self.banks,
            rows: self.spec.rows,
            cols: self.spec.cols,
        }
    }
}

/// A built multi-bank controller. State (cell arrays, RNG streams,
/// telemetry) persists across [`Controller::run`] calls, so a trace can be
/// replayed in chunks.
pub struct Controller {
    config: ControllerConfig,
    banks: Vec<Bank>,
}

impl Controller {
    /// Samples all banks (in parallel — bank construction preloads every
    /// cell) and returns a ready controller.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero banks.
    #[must_use]
    pub fn new(config: ControllerConfig) -> Self {
        assert!(config.banks > 0, "a controller needs at least one bank");
        let banks = stt_stats::fill_indexed(config.banks, |index| Bank::new(index, &config));
        Self { config, banks }
    }

    /// The configuration this controller was built from.
    #[must_use]
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// Direct mutable access to the banks, for the scheduler frontend: it
    /// drives the exact same service stage as serial replay, just in a
    /// different order.
    pub(crate) fn banks_mut(&mut self) -> &mut [Bank] {
        &mut self.banks
    }

    /// The stored bits of every bank right now (bank order, row-major) —
    /// the state the scheduler frontend's bit-identity tests compare.
    #[must_use]
    pub fn stored_state(&self) -> Vec<Vec<bool>> {
        self.banks.iter().map(Bank::stored_bits).collect()
    }

    /// Serves every transaction of `trace` and returns the run's telemetry
    /// (including the post-run integrity audit).
    ///
    /// Generic over [`TxnSource`]: an owned [`Trace`](crate::Trace) and a
    /// zero-copy
    /// [`TraceView`](crate::TraceView) partition into the same per-bank
    /// slices and replay bit-identically.
    ///
    /// # Panics
    ///
    /// Panics if a transaction addresses a bank the controller does not
    /// have.
    pub fn run<S: TxnSource + ?Sized>(&mut self, trace: &S, dispatch: Dispatch) -> Telemetry {
        let mut per_bank: Vec<Vec<Transaction>> = vec![Vec::new(); self.banks.len()];
        for i in 0..trace.len() {
            let txn = trace.get(i);
            assert!(
                txn.bank < per_bank.len(),
                "transaction targets bank {} of a {}-bank controller",
                txn.bank,
                per_bank.len()
            );
            per_bank[txn.bank].push(txn);
        }
        let Self { config, banks } = self;
        let faults = &config.faults;
        match dispatch {
            Dispatch::Serial => {
                for (bank, txns) in banks.iter_mut().zip(&per_bank) {
                    for txn in txns {
                        bank.execute(txn, faults);
                    }
                }
            }
            Dispatch::Parallel => {
                crossbeam::scope(|scope| {
                    for (bank, txns) in banks.iter_mut().zip(&per_bank) {
                        scope.spawn(move |_| {
                            for txn in txns {
                                bank.execute(txn, faults);
                            }
                        });
                    }
                })
                .expect("a bank worker panicked");
            }
        }
        self.telemetry()
    }

    /// A fresh telemetry snapshot (per-bank counters plus audit) without
    /// serving anything.
    #[must_use]
    pub fn telemetry(&self) -> Telemetry {
        Telemetry {
            banks: self.banks.iter().map(|b| b.telemetry().clone()).collect(),
            audit_corrupted_bits: self.banks.iter().map(Bank::audit_corrupted_bits).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::Trace;
    use crate::workload::Workload;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_trace(config: &ControllerConfig, count: usize) -> Trace {
        Workload::Uniform { read_fraction: 0.7 }.generate(
            config.footprint(),
            count,
            &mut StdRng::seed_from_u64(5),
        )
    }

    #[test]
    fn every_transaction_is_served() {
        let config = ControllerConfig::small(SchemeKind::Nondestructive, 3);
        let trace = small_trace(&config, 600);
        let telemetry = Controller::new(config).run(&trace, Dispatch::Serial);
        assert_eq!(telemetry.transactions(), 600);
        assert_eq!(telemetry.banks.len(), 3);
        assert_eq!(telemetry.aggregate().reads, trace.reads() as u64);
    }

    #[test]
    fn state_persists_across_runs() {
        let config = ControllerConfig::small(SchemeKind::Nondestructive, 2);
        let trace = small_trace(&config, 100);
        let mut controller = Controller::new(config);
        controller.run(&trace, Dispatch::Serial);
        let telemetry = controller.run(&trace, Dispatch::Serial);
        assert_eq!(telemetry.transactions(), 200);
    }

    #[test]
    #[should_panic(expected = "targets bank")]
    fn out_of_range_bank_panics() {
        let config = ControllerConfig::small(SchemeKind::Conventional, 2);
        let mut controller = Controller::new(config);
        let mut trace = Trace::new();
        trace.push(Transaction::read(5, stt_array::Address::new(0, 0)));
        controller.run(&trace, Dispatch::Serial);
    }
}
