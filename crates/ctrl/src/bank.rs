//! One bank: a sampled array, its own RNG, and the logic that serves a
//! transaction end to end.
//!
//! A bank owns everything it touches — cell array, ground-truth mirror,
//! telemetry, random streams — so banks can be driven from different
//! threads with no sharing at all. Its RNG is seeded from `(controller
//! seed, bank index)` with the same SplitMix64 scrambling as the
//! Monte-Carlo runner, which is what makes an N-thread run bit-identical
//! to a serial one.
//!
//! Five independent RNG streams per bank keep orthogonal concerns from
//! perturbing each other:
//!
//! * the **demand** stream serves host traffic (senses, write pulses);
//! * the **scrub** stream serves background scrub reads and repairs, so an
//!   interleaved scrub never changes what a demand read would have seen;
//! * the **fault** stream drives retention and read-disturb injection, and
//!   is only drawn from when those fault models are enabled — a quiet plan
//!   leaves demand traffic bit-identical to builds without soft errors;
//! * the **March** stream serves manufacturing-test traffic
//!   ([`Bank::execute_march_op`]) so a test pass is deterministic and
//!   independent of whatever demand traffic preceded it;
//! * the **calibration** stream serves the calibration daemon's
//!   reference-cell bursts (see [`crate::calib`]), so recalibrating a bank
//!   never changes what a demand read would have seen.
//!
//! Dynamic drift (see [`DriftPlan`]) evolves each bank's cells on its
//! demand busy clock. Rebuilding cells for a new drift quantum draws no
//! RNG, so drift-laden runs stay bit-identical across serial, parallel and
//! event-driven dispatch too.

use std::cell::RefCell;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;
use stt_array::{
    run_with_power_failure, AccessTransistor, Address, Array, Cell, OperationCost, OperationStep,
    Phase, PhaseKind, PowerFailure,
};
use stt_mtj::{LinearRolloff, MtjSpec, ResistanceCurve};
use stt_sense::{ChipTiming, DesignPoint, SchemeKind};

use crate::calib::CalibConfig;
use crate::engine::ControllerConfig;
use crate::faults::{CouplingKind, DriftKey, DriftPlan, FaultPlan};
use crate::march::MarchOp;
use crate::reliability::codec::{self, DecodeKind};
use crate::reliability::{word_count, ScrubCursor, ScrubOutcome, WORD_BITS};
use crate::retry::RetryPolicy;
use crate::sense::Scheme;
use crate::telemetry::{BankTelemetry, EccEventKind};
use crate::txn::{Op, Transaction};

/// Programming pulses a write may burn before the controller declares the
/// cell unwritable (`(1 − p_switch)⁸` residual failure).
const MAX_WRITE_ATTEMPTS: u32 = 8;

/// Seed salt for the per-bank scrub RNG stream (distinct from every demand
/// stream by construction: SplitMix64 scrambles the salted seed).
const SCRUB_STREAM: u64 = 0x5343_5255_4253_4d31;
/// Seed salt for the per-bank fault-injection RNG stream.
const FAULT_STREAM: u64 = 0x4641_554c_5453_4d32;
/// Seed salt for the per-bank March-test RNG stream.
const MARCH_STREAM: u64 = 0x4d41_5243_4853_4d33;
/// Seed salt for the per-bank calibration RNG stream.
const CALIB_STREAM: u64 = 0x4341_4c49_4253_4d34;

/// Residual high/low separation of a pinhole-shorted MTJ. The MgO defect
/// shunts the tunnel barrier, so both magnetic states conduct through the
/// short: the cell's "high" state is electrically a low state a few percent
/// stiffer, far below any scheme's sensing threshold.
const PINHOLE_RESIDUAL_TMR: f64 = 0.02;

/// Which seeded RNG stream an operation draws from. Keeping demand, scrub
/// and March traffic on separate streams means enabling one never perturbs
/// what the others would have seen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stream {
    Demand,
    Scrub,
    March,
}

/// Controller-side ECC state for one bank: the per-word check store
/// (modelling dedicated check columns, updated on writes, never corrupted
/// by the array) and the scrub walk cursor.
#[derive(Debug)]
struct EccState {
    check: Vec<u8>,
    cursor: ScrubCursor,
}

/// Dynamic-drift state for one bank, present only under a non-quiet
/// [`DriftPlan`]: the per-cell *undrifted* baseline specs (captured after
/// sampling and pinhole swaps, so defects drift with the rest of the
/// array), and the quantised drift key the cells were last rebuilt at.
#[derive(Debug)]
struct DriftState {
    plan: DriftPlan,
    /// `None` until the first access applies drift.
    key: Option<DriftKey>,
    /// Row-major per-cell baseline specs at the 300 K calibration point.
    baseline: Vec<MtjSpec>,
}

/// One independently-addressable bank of the controller.
#[derive(Debug)]
pub struct Bank {
    index: usize,
    array: Array,
    /// What the host believes each cell holds (row-major).
    truth: Vec<bool>,
    rng: StdRng,
    scrub_rng: StdRng,
    fault_rng: StdRng,
    march_rng: StdRng,
    calib_rng: StdRng,
    scheme: Scheme,
    retry: RetryPolicy,
    /// Stuck-at defects on this bank, pre-filtered from the fault plan.
    stuck: Vec<(Address, bool)>,
    read_cost: OperationCost,
    write_cost: OperationCost,
    telemetry: BankTelemetry,
    reads_served: u64,
    /// SECDED sidecar, present only under `EccMode::Secded`.
    ecc: Option<EccState>,
    /// Busy-time stamp (ns) of each cell's last access, the retention
    /// fault's per-cell clock. Busy time — not wall time — so retention is
    /// identical across serial, parallel and event-driven dispatch.
    last_touch_ns: Vec<f64>,
    /// Dynamic-drift sidecar, present only under a non-quiet plan.
    drift: Option<DriftState>,
    /// Inline calibration daemon, `None` when off (or frontend-driven).
    calib: Option<CalibConfig>,
    /// Nominal (unvaried) device recipe, the β refit's starting point.
    nominal_mtj: MtjSpec,
    nominal_transistor: AccessTransistor,
    /// Demand-read count at the last calibration check.
    calib_reads_mark: u64,
    /// `misreads + unconfident_reads` at the last calibration check.
    calib_errors_mark: u64,
}

impl Bank {
    /// Samples and initialises bank `index` of `config`.
    ///
    /// The array is filled with a random pattern (ideal preload writes, not
    /// traffic), stuck cells are snapped to their defect value, and the
    /// host's truth mirror starts equal to the actual stored state — so
    /// every misread and corrupted bit the telemetry later reports was
    /// caused by served traffic, not initial conditions. Under ECC the
    /// per-word check store is encoded from that same consistent state.
    #[must_use]
    pub fn new(index: usize, config: &ControllerConfig) -> Self {
        let spec = &config.spec;
        let mut rng = stt_stats::trial_rng(config.seed, index);
        let scrub_rng = stt_stats::trial_rng(config.seed ^ SCRUB_STREAM, index);
        let fault_rng = stt_stats::trial_rng(config.seed ^ FAULT_STREAM, index);
        let march_rng = stt_stats::trial_rng(config.seed ^ MARCH_STREAM, index);
        let calib_rng = stt_stats::trial_rng(config.seed ^ CALIB_STREAM, index);
        let mut array = spec.sample(&mut rng);
        let mut truth = vec![false; spec.capacity_bits()];
        let cols = spec.cols;
        // Row-major like `Array::addresses`, so the preload draw order (and
        // every downstream stream) is unchanged — without materialising an
        // address list per bank, which lazy chips build by the thousand.
        for row in 0..spec.rows {
            for col in 0..cols {
                let bit = rng.gen_bool(0.5);
                array.write_bit(Address::new(row, col), bit);
                truth[row * cols + col] = bit;
            }
        }
        let stuck: Vec<(Address, bool)> = config
            .faults
            .stuck_cells_of(index)
            .map(|cell| (cell.addr, cell.value))
            .collect();
        for &(addr, value) in &stuck {
            array.write_bit(addr, value);
            truth[addr.row * cols + addr.col] = value;
        }
        // Pinhole defects: swap the sampled device for one whose "high"
        // state is the low-state curve scaled by the residual TMR, keeping
        // the sampled transistor and the preloaded state. No RNG is drawn,
        // so a quiet plan leaves every stream untouched.
        for defect in config.faults.pinhole_cells_of(index) {
            let mtj = &spec.cell.mtj;
            let low = mtj.resistance.r_low0();
            let dr_low = mtj.resistance.dr_low_max();
            let collapsed = MtjSpec {
                resistance: LinearRolloff::new(
                    low,
                    low * (1.0 + PINHOLE_RESIDUAL_TMR),
                    dr_low,
                    dr_low * (1.0 + PINHOLE_RESIDUAL_TMR),
                    mtj.resistance.i_max(),
                ),
                switching: mtj.switching,
            };
            let prior = array.cell(defect.addr).state();
            let transistor = *array.cell(defect.addr).transistor();
            *array.cell_mut(defect.addr) = Cell::new(collapsed.into_device(), transistor);
            array.cell_mut(defect.addr).set_state(prior);
        }
        // Dynamic drift: capture the per-cell baseline specs *after* the
        // pinhole swaps, so every defect drifts along with the healthy
        // cells. The capture (and later rebuilds) draws no RNG.
        let drift = (!config.drift.is_quiet()).then(|| DriftState {
            baseline: array
                .addresses()
                .map(|addr| {
                    let device = array.cell(addr).device();
                    let ResistanceCurve::Linear(rolloff) = device.curve() else {
                        panic!("dynamic drift requires linear-calibration cells")
                    };
                    MtjSpec {
                        resistance: *rolloff,
                        switching: *device.switching(),
                    }
                })
                .collect(),
            plan: config.drift.clone(),
            key: None,
        });
        let nominal = spec.cell.nominal_cell();
        let mut telemetry = BankTelemetry::with_bounds(&config.latency_bounds);
        let ecc = config.ecc.is_enabled().then(|| {
            let words = word_count(spec.capacity_bits());
            telemetry.ecc.words_total = words as u64;
            EccState {
                check: (0..words)
                    .map(|w| codec::encode(truth_word(&truth, w)))
                    .collect(),
                cursor: ScrubCursor::new(words),
            }
        });
        let design = DesignPoint::date2010(&spec.cell.nominal_cell());
        let timing = ChipTiming::date2010();
        Self {
            index,
            array,
            truth,
            rng,
            scrub_rng,
            fault_rng,
            march_rng,
            calib_rng,
            scheme: Scheme::for_kind(config.kind, &design),
            retry: config.retry,
            stuck,
            read_cost: timing.read_cost(config.kind, &design),
            write_cost: write_cost(&timing),
            telemetry,
            reads_served: 0,
            ecc,
            last_touch_ns: vec![0.0; spec.capacity_bits()],
            drift,
            calib: config.calib,
            nominal_mtj: spec.cell.mtj.clone(),
            nominal_transistor: *nominal.transistor(),
            calib_reads_mark: 0,
            calib_errors_mark: 0,
        }
    }

    /// This bank's index in the controller.
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// Telemetry accumulated so far.
    #[must_use]
    pub fn telemetry(&self) -> &BankTelemetry {
        &self.telemetry
    }

    /// `true` when this bank runs with the SECDED layer.
    #[must_use]
    pub fn has_ecc(&self) -> bool {
        self.ecc.is_some()
    }

    /// Serves one transaction.
    ///
    /// # Panics
    ///
    /// Panics if the transaction's address is out of this bank's range.
    pub fn execute(&mut self, txn: &Transaction, faults: &FaultPlan) {
        self.maybe_apply_drift();
        match txn.op {
            Op::Read => {
                self.reads_served += 1;
                self.telemetry.reads += 1;
                if faults.cuts_power_on(self.reads_served) {
                    self.serve_read_with_power_cut(txn.addr);
                } else if self.ecc.is_some() {
                    self.serve_read_ecc(txn.addr, faults);
                } else {
                    self.serve_read_plain(txn.addr, faults);
                }
                self.maybe_inline_calibration();
            }
            Op::Write(bit) => self.serve_write(txn.addr, bit, faults),
        }
    }

    /// Serves one lowered March operation on `cell` (row-major index): `W`
    /// drives the shared write datapath on the March RNG stream, `R` senses
    /// through the real read path (plain or ECC, matching the bank's
    /// protection) and records the verdict against the expectation in
    /// [`crate::telemetry::MarchTelemetry`]. Occupancy is charged to
    /// `telemetry.march.busy_time`, not the demand busy clock, so test time
    /// never accelerates the retention decay it screens for.
    ///
    /// With `raw` set, reads bypass the SECDED codec and observe the bare
    /// array bit (see [`MarchConfig::raw`](crate::sched::MarchConfig)) —
    /// the tester's raw-array mode that recovers single-cell-fault
    /// coverage the codec would otherwise absorb. No effect without ECC.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of this bank's range.
    pub fn execute_march_op(
        &mut self,
        cell: u32,
        op: MarchOp,
        element: u8,
        raw: bool,
        faults: &FaultPlan,
    ) {
        self.maybe_apply_drift();
        let addr = self.addr_of(cell as usize);
        self.telemetry.march.ops += 1;
        match op {
            MarchOp::W(bit) => {
                self.telemetry.march.writes += 1;
                let pulses_burned = self.write_cell(addr, bit, faults, Stream::March);
                self.telemetry.march.busy_time +=
                    self.write_cost.latency() * f64::from(pulses_burned);
                self.telemetry.energy += self.write_cost.energy() * f64::from(pulses_burned);
                let index = self.truth_index(addr);
                self.last_touch_ns[index] = self.busy_now_ns();
            }
            MarchOp::R(expected) => {
                self.telemetry.march.reads += 1;
                let got = self.march_read(addr, raw, faults);
                if got != expected {
                    self.telemetry
                        .march
                        .record_mismatch(cell, element, expected, got);
                }
            }
        }
    }

    /// One March read on the March stream through the bank's real read
    /// path. With ECC the tester observes the *decoded* bit — exactly what
    /// a host would — so single-cell defects the codec absorbs legitimately
    /// escape the test at that protection level; `raw` bypasses the codec
    /// and senses the one cell directly, like an unprotected part.
    /// Soft-error models tick as they do for demand reads, on the March
    /// stream.
    fn march_read(&mut self, addr: Address, raw: bool, faults: &FaultPlan) -> bool {
        let cell = self.truth_index(addr);
        if self.ecc.is_some() && !raw {
            let word = cell / WORD_BITS;
            let span = self.word_span(word);
            self.apply_retention(span.clone(), faults, Stream::March);
            let (received, max_attempts, total_attempts, _) =
                self.sense_word(span.clone(), Stream::March);
            if self.scheme.is_destructive() {
                self.snap_stuck_cells();
            }
            self.apply_read_disturb(span.clone(), faults, Stream::March);
            if faults.has_soft_errors() {
                self.snap_stuck_cells();
            }
            let check = self.ecc.as_ref().expect("checked above").check[word];
            let decoded = codec::decode(received, check);
            self.telemetry.march.busy_time += self.read_cost.latency() * f64::from(max_attempts);
            self.telemetry.energy += self.read_cost.energy() * total_attempts as f64;
            (decoded.data >> (cell - span.start)) & 1 == 1
        } else {
            self.apply_retention(cell..cell + 1, faults, Stream::March);
            let scheme = self.scheme;
            let retry = self.retry;
            let (array, rng) = (&mut self.array, &mut self.march_rng);
            let resolution = retry.resolve(|| scheme.sense_once(array, addr, rng));
            if scheme.is_destructive() {
                self.snap_stuck_cells();
            }
            self.apply_read_disturb(cell..cell + 1, faults, Stream::March);
            if faults.has_soft_errors() {
                self.snap_stuck_cells();
            }
            self.telemetry.march.busy_time +=
                self.read_cost.latency() * f64::from(resolution.attempts);
            self.telemetry.energy += self.read_cost.energy() * f64::from(resolution.attempts);
            resolution.bit
        }
    }

    fn serve_read_plain(&mut self, addr: Address, faults: &FaultPlan) {
        let cell = self.truth_index(addr);
        self.apply_retention(cell..cell + 1, faults, Stream::Demand);
        let scheme = self.scheme;
        let retry = self.retry;
        let (array, rng) = (&mut self.array, &mut self.rng);
        let resolution = retry.resolve(|| scheme.sense_once(array, addr, rng));
        if scheme.is_destructive() {
            // The erase/write-back pulses may have hit a stuck cell.
            self.snap_stuck_cells();
        }
        self.apply_read_disturb(cell..cell + 1, faults, Stream::Demand);
        if faults.has_soft_errors() {
            self.snap_stuck_cells();
        }
        self.telemetry.read_retries += u64::from(resolution.retries());
        if !resolution.confident {
            self.telemetry.unconfident_reads += 1;
        }
        if resolution.bit != self.truth[cell] {
            self.telemetry.misreads += 1;
        }
        let latency = self.read_cost.latency() * f64::from(resolution.attempts);
        let energy = self.read_cost.energy() * f64::from(resolution.attempts);
        self.telemetry.record_read_latency(latency);
        self.telemetry.busy_time += latency;
        self.telemetry.energy += energy;
    }

    /// An ECC-protected read: sense the whole 64-cell word (one sense
    /// amplifier per column, so word latency is the *slowest* cell's retry
    /// chain while energy sums every attempt), decode it against the check
    /// store, and classify the access as clean / corrected CE / detected UE
    /// / silent. The delivered bit is cut from the *decoded* word, so a
    /// single-bit error anywhere in the word — stuck cell, retention flip,
    /// marginal sense — no longer reaches the host.
    fn serve_read_ecc(&mut self, addr: Address, faults: &FaultPlan) {
        let cell = self.truth_index(addr);
        let word = cell / WORD_BITS;
        let span = self.word_span(word);
        self.apply_retention(span.clone(), faults, Stream::Demand);
        let (received, max_attempts, total_attempts, any_unconfident) =
            self.sense_word(span.clone(), Stream::Demand);
        if self.scheme.is_destructive() {
            self.snap_stuck_cells();
        }
        self.apply_read_disturb(span.clone(), faults, Stream::Demand);
        if faults.has_soft_errors() {
            self.snap_stuck_cells();
        }
        self.telemetry.read_retries += u64::from(max_attempts - 1);
        if any_unconfident {
            self.telemetry.unconfident_reads += 1;
        }

        let check = self.ecc.as_ref().expect("ECC read without ECC state").check[word];
        let decoded = codec::decode(received, check);
        let truth = truth_word(&self.truth, word);
        let ecc = &mut self.telemetry.ecc;
        match decoded.kind {
            DecodeKind::Uncorrectable => {
                ecc.detected_ue += 1;
                ecc.log_event(word, EccEventKind::DemandUe);
            }
            _ if decoded.data != truth => {
                // The codec passed it (clean or "corrected"), but the word
                // is still wrong: the silent residue ECC cannot see.
                ecc.silent_errors += 1;
                ecc.log_event(word, EccEventKind::DemandSilent);
            }
            kind if kind.is_corrected() => {
                ecc.corrected_ce += 1;
                ecc.log_event(word, EccEventKind::DemandCe);
            }
            _ => ecc.clean_reads += 1,
        }
        let delivered = (decoded.data >> (cell - span.start)) & 1 == 1;
        if delivered != self.truth[cell] {
            self.telemetry.misreads += 1;
        }

        let latency = self.read_cost.latency() * f64::from(max_attempts);
        let energy = self.read_cost.energy() * total_attempts as f64;
        self.telemetry.record_read_latency(latency);
        self.telemetry.busy_time += latency;
        self.telemetry.energy += energy;
    }

    /// A read interrupted by a power cut. The scheme's sequence is built as
    /// separate steps and cut at the scheme's most vulnerable point: for
    /// the destructive scheme that is after the erase (the §I window), for
    /// the read-only schemes any point — no step mutates state either way.
    /// The aborted read delivers no bit and charges no latency: the rail is
    /// down.
    fn serve_read_with_power_cut(&mut self, addr: Address) {
        self.telemetry.power_cuts += 1;
        let scheme = self.scheme;
        let sensed = scheme.sense_readonly(&self.array, addr, &mut self.rng);
        let rng = RefCell::new(&mut self.rng);
        let steps: Vec<OperationStep<'_>> = if scheme.is_destructive() {
            vec![
                Box::new(|_a: &mut Array| {}), // read 1: V_BL1 onto C1
                Box::new(|a: &mut Array| {
                    a.write_bit_pulsed(addr, false, &mut **rng.borrow_mut());
                }),
                Box::new(|_a: &mut Array| {}), // read 2 + compare
                Box::new(|a: &mut Array| {
                    a.write_bit_pulsed(addr, sensed.bit, &mut **rng.borrow_mut());
                }),
            ]
        } else {
            // Two sampling phases and the sense — none touches the cell.
            vec![
                Box::new(|_a: &mut Array| {}),
                Box::new(|_a: &mut Array| {}),
                Box::new(|_a: &mut Array| {}),
            ]
        };
        let outcome = run_with_power_failure(&mut self.array, steps, PowerFailure::after_step(1));
        self.telemetry.corrupted_bits += outcome.corrupted.len() as u64;
        self.snap_stuck_cells();
    }

    fn serve_write(&mut self, addr: Address, bit: bool, faults: &FaultPlan) {
        self.telemetry.writes += 1;
        let pulses_burned = self.write_cell(addr, bit, faults, Stream::Demand);
        self.telemetry.busy_time += self.write_cost.latency() * f64::from(pulses_burned);
        self.telemetry.energy += self.write_cost.energy() * f64::from(pulses_burned);
        let index = self.truth_index(addr);
        self.last_touch_ns[index] = self.busy_now_ns();
    }

    /// The write datapath shared by demand and March traffic: programming
    /// pulses on the stream's RNG, then every write-time defect hook in
    /// physical order — write transition fault, stuck snap, backhopping,
    /// intra-word coupling. Returns the pulses burned for the caller to
    /// price on its own clock. The truth mirror and ECC check store always
    /// track what the host *believes* it wrote; the defects corrupt only
    /// the stored state.
    fn write_cell(&mut self, addr: Address, bit: bool, faults: &FaultPlan, stream: Stream) -> u32 {
        let index = self.truth_index(addr);
        let prior = self.array.read_state(addr).bit();
        let transition_lost = prior != bit
            && faults
                .transition_faults_of(self.index)
                .any(|fault| fault.addr == addr && fault.rising == bit);
        let pulses_burned = if transition_lost {
            // WTF: the pulse is driven (and priced) but the free layer never
            // switches in this direction — and the same defect defeats the
            // read-verify loop, so the failure is silent: the controller
            // believes the first pulse stuck.
            self.telemetry.write_transition_faults += 1;
            1
        } else {
            let array = &mut self.array;
            let rng = match stream {
                Stream::Demand => &mut self.rng,
                Stream::Scrub => &mut self.scrub_rng,
                Stream::March => &mut self.march_rng,
            };
            match array.write_bit_verified(addr, bit, MAX_WRITE_ATTEMPTS, rng) {
                Some(used) => {
                    self.telemetry.write_retries += u64::from(used - 1);
                    used
                }
                None => {
                    self.telemetry.write_failures += 1;
                    MAX_WRITE_ATTEMPTS
                }
            }
        };
        self.truth[index] = bit;
        self.snap_stuck_cells();
        // Backhopping: a completed write hops back before the next access.
        if !transition_lost {
            let prob = faults
                .backhop_cells_of(self.index)
                .find(|cell| cell.addr == addr)
                .map(|cell| cell.prob);
            if let Some(prob) = prob {
                let rng = match stream {
                    Stream::Demand => &mut self.rng,
                    Stream::Scrub => &mut self.scrub_rng,
                    Stream::March => &mut self.march_rng,
                };
                if rng.gen_bool(prob) {
                    self.array.write_bit(addr, !bit);
                    self.telemetry.backhop_flips += 1;
                }
            }
        }
        self.apply_coupling(addr, index, bit, prior, faults);
        // Controller-side read-modify-write: the check columns are refreshed
        // from the host's word, so they always match the truth mirror.
        if let Some(ecc) = &mut self.ecc {
            let word = index / WORD_BITS;
            ecc.check[word] = codec::encode(truth_word(&self.truth, word));
        }
        pulses_burned
    }

    /// Evaluates intra-word coupling defects after a write to `addr` (the
    /// potential aggressor) settles. The CFst trigger is the *final stored*
    /// aggressor state — so a backhop or stuck defect on the aggressor
    /// participates — while the CFds trigger is the non-transition `w1`
    /// pulse itself (`prior && bit`). Victims are corrupted behind the
    /// host's back: the truth mirror is not updated.
    fn apply_coupling(
        &mut self,
        addr: Address,
        index: usize,
        bit: bool,
        prior: bool,
        faults: &FaultPlan,
    ) {
        let word = index / WORD_BITS;
        let position = index % WORD_BITS;
        let stored = self.array.read_state(addr).bit();
        let mut forced: Vec<(usize, bool)> = Vec::new();
        for fault in faults.coupling_faults_of(self.index) {
            if fault.word != word || fault.aggressor_bit != position {
                continue;
            }
            let victim = fault.word * WORD_BITS + fault.victim_bit;
            if victim >= self.truth.len() {
                continue;
            }
            match fault.kind {
                CouplingKind::State {
                    aggressor_value,
                    victim_value,
                } if stored == aggressor_value => forced.push((victim, victim_value)),
                CouplingKind::Disturb { victim_value } if bit && prior => {
                    forced.push((victim, victim_value));
                }
                _ => {}
            }
        }
        let any_forced = !forced.is_empty();
        for (victim, value) in forced {
            self.array.write_bit(self.addr_of(victim), value);
            self.telemetry.coupling_triggers += 1;
        }
        if any_forced {
            // A stuck victim stays stuck: the defect dominates the coupling.
            self.snap_stuck_cells();
        }
    }

    /// One background scrub step: re-read the next word in the round-robin
    /// walk through the configured sensing scheme (on the dedicated scrub
    /// RNG stream), decode it, and **repair in place** — every cell whose
    /// stored state disagrees with the decoded word is rewritten, which
    /// fixes retention flips, read-disturb flips and power-cut damage alike
    /// as long as the word is still correctable.
    ///
    /// An *uncorrectable* word is raised to the host and reconstructed from
    /// the host's copy (the truth mirror stands in for the page cache /
    /// RAID layer a real system recovers from), the patrol-scrub →
    /// page-retirement → re-migration flow: the word costs one recoverable
    /// `scrub_ue_found` event instead of becoming a permanent demand-UE
    /// emitter that every later read of the word trips over. Without this,
    /// a single double-flip inside one scrub rotation poisons its word for
    /// the rest of the run — and a third flip on top miscorrects, so scrub
    /// would lock wrong data in place.
    ///
    /// Returns `None` when the bank runs without ECC (nothing to scrub
    /// against). Scrub time and energy are charged to the bank's busy-time
    /// accumulator exactly like demand traffic, so the scheduler frontend
    /// prices scrub occupancy the same way.
    pub fn scrub_next(&mut self, faults: &FaultPlan) -> Option<ScrubOutcome> {
        self.ecc.as_ref()?;
        self.maybe_apply_drift();
        let (word, wrapped) = self.ecc.as_mut().expect("checked above").cursor.advance();
        let span = self.word_span(word);
        self.apply_retention(span.clone(), faults, Stream::Scrub);
        let (received, max_attempts, _, _) = self.sense_word(span.clone(), Stream::Scrub);
        if self.scheme.is_destructive() {
            self.snap_stuck_cells();
        }
        self.apply_read_disturb(span.clone(), faults, Stream::Scrub);
        if faults.has_soft_errors() {
            self.snap_stuck_cells();
        }
        let mut latency = self.read_cost.latency() * f64::from(max_attempts);
        let mut energy = self.read_cost.energy() * f64::from(max_attempts);

        let check = self.ecc.as_ref().expect("checked above").check[word];
        let decoded = codec::decode(received, check);
        let mut corrected = false;
        let mut uncorrectable = false;
        let mut rewritten = 0u32;
        match decoded.kind {
            DecodeKind::Clean => {}
            DecodeKind::Uncorrectable => {
                uncorrectable = true;
                self.telemetry.ecc.scrub_ue_found += 1;
                self.telemetry.ecc.log_event(word, EccEventKind::ScrubUe);
                // Host-assisted reconstruction: restore every cell that
                // disagrees with the host's copy. The check sidecar already
                // holds encode(truth), so the word re-reads clean afterwards.
                let truth = truth_word(&self.truth, word);
                for k in 0..span.len() {
                    let addr = self.addr_of(span.start + k);
                    let target = (truth >> k) & 1 == 1;
                    if self.array.read_state(addr).bit() != target {
                        let pulses = self
                            .array
                            .write_bit_verified(
                                addr,
                                target,
                                MAX_WRITE_ATTEMPTS,
                                &mut self.scrub_rng,
                            )
                            .unwrap_or(MAX_WRITE_ATTEMPTS);
                        latency += self.write_cost.latency() * f64::from(pulses);
                        energy += self.write_cost.energy() * f64::from(pulses);
                        rewritten += 1;
                    }
                }
                if rewritten > 0 {
                    self.snap_stuck_cells();
                }
                self.telemetry.ecc.scrub_cells_rewritten += u64::from(rewritten);
            }
            _ => {
                corrected = true;
                self.telemetry.ecc.scrub_ce_corrected += 1;
                self.telemetry.ecc.log_event(word, EccEventKind::ScrubCe);
                // Repair: rewrite cells whose *stored* state disagrees with
                // the corrected word. A transient mis-sense decodes to the
                // stored state itself, so nothing is rewritten (and no RNG
                // is drawn) — scrub stays a no-op on a healthy array.
                for k in 0..span.len() {
                    let addr = self.addr_of(span.start + k);
                    let target = (decoded.data >> k) & 1 == 1;
                    if self.array.read_state(addr).bit() != target {
                        let pulses = self
                            .array
                            .write_bit_verified(
                                addr,
                                target,
                                MAX_WRITE_ATTEMPTS,
                                &mut self.scrub_rng,
                            )
                            .unwrap_or(MAX_WRITE_ATTEMPTS);
                        latency += self.write_cost.latency() * f64::from(pulses);
                        energy += self.write_cost.energy() * f64::from(pulses);
                        rewritten += 1;
                    }
                }
                if rewritten > 0 {
                    self.snap_stuck_cells();
                }
                self.telemetry.ecc.scrub_cells_rewritten += u64::from(rewritten);
            }
        }
        self.telemetry.ecc.scrub_words_scanned += 1;
        if wrapped {
            self.telemetry.ecc.scrub_passes += 1;
        }
        // Scrub occupancy is charged to its own accumulator: `busy_time` is
        // the demand-traffic clock (and the retention-decay clock), so
        // folding scrub into it would accelerate the decay scrub repairs
        // and mismatch fault exposure across protection levels.
        self.telemetry.ecc.scrub_busy_time += latency;
        self.telemetry.energy += energy;
        Some(ScrubOutcome {
            word,
            corrected,
            uncorrectable,
            cells_rewritten: rewritten,
            completed_pass: wrapped,
        })
    }

    /// Advances dynamic drift to the bank's current busy-time temperature /
    /// age point. Quantised by [`DriftPlan`]'s step so the array is only
    /// rebuilt when the operating point actually moves; the rebuild swaps
    /// each cell's device for its drifted baseline (preserving stored state
    /// and the sampled transistor) and draws **no** RNG — exactly the
    /// pinhole-swap pattern — so every stream stays bit-identical across
    /// serial, parallel and frontend dispatch.
    fn maybe_apply_drift(&mut self) {
        let busy = self.busy_now_ns();
        let Some(state) = self.drift.as_mut() else {
            return;
        };
        let key = state.plan.key_at(self.index, busy);
        if state.key == Some(key) {
            return;
        }
        state.key = Some(key);
        let cols = self.array.cols();
        for (cell, base) in state.baseline.iter().enumerate() {
            let addr = Address::new(cell / cols, cell % cols);
            let spec = state.plan.drifted_spec(base, key);
            let prior = self.array.cell(addr).state();
            let transistor = *self.array.cell(addr).transistor();
            *self.array.cell_mut(addr) = Cell::new(spec.into_device(), transistor);
            self.array.cell_mut(addr).set_state(prior);
        }
    }

    /// Inline calibration daemon: once per
    /// [`CalibConfig::check_reads`] demand reads, evaluate the trip
    /// condition against the window's misread + retry-exhaustion counts.
    fn maybe_inline_calibration(&mut self) {
        let Some(calib) = self.calib else {
            return;
        };
        if self.telemetry.reads - self.calib_reads_mark < calib.check_reads {
            return;
        }
        self.calibration_check(calib);
    }

    /// Frontend-daemon entry point: one periodic calibration check on this
    /// bank (the scheduler invokes it as background work). Applies any
    /// pending drift first — an idle bank's temperature still follows the
    /// plan — then evaluates the trip condition. Returns `true` when a
    /// burst + refit ran.
    pub fn calibration_tick(&mut self, calib: &CalibConfig) -> bool {
        self.maybe_apply_drift();
        self.calibration_check(*calib)
    }

    /// One watch-window evaluation: compare the error rate since the last
    /// check against the trip threshold; on a trip, run the burst + refit.
    fn calibration_check(&mut self, calib: CalibConfig) -> bool {
        let reads = self.telemetry.reads - self.calib_reads_mark;
        let errors =
            (self.telemetry.misreads + self.telemetry.unconfident_reads) - self.calib_errors_mark;
        self.calib_reads_mark = self.telemetry.reads;
        self.calib_errors_mark = self.telemetry.misreads + self.telemetry.unconfident_reads;
        if reads == 0 || !calib.trips(errors, reads) {
            return false;
        }
        self.telemetry.calib.trips += 1;
        self.calibration_burst(calib);
        true
    }

    /// A calibration burst: [`CalibConfig::burst_reads`] read-only
    /// reference senses through the real sensing path on the dedicated
    /// calibration RNG stream (never mutating cell state, never touching
    /// demand randomness), then the β refit. Occupancy lands on
    /// `telemetry.calib.busy_time`, not the demand clock, so a burst never
    /// advances retention decay or the drift clock itself.
    fn calibration_burst(&mut self, calib: CalibConfig) {
        self.telemetry.calib.bursts += 1;
        self.telemetry.calib.burst_reads += u64::from(calib.burst_reads);
        let scheme = self.scheme;
        let cells = self.truth.len();
        for k in 0..calib.burst_reads as usize {
            let addr = self.addr_of(k % cells);
            let _ = scheme.sense_readonly(&self.array, addr, &mut self.calib_rng);
        }
        self.telemetry.calib.busy_time += self.read_cost.latency() * f64::from(calib.burst_reads);
        self.telemetry.energy += self.read_cost.energy() * f64::from(calib.burst_reads);
        self.refit();
    }

    /// Re-runs the paper's Eq. 5/10 β optimiser against the *drifted*
    /// nominal device (nominal recipe pushed through the current drift key)
    /// and swaps the new operating point into this bank's read path. Read
    /// timing is deliberately left at the design-time cost: the SA's clamp
    /// and integration windows are hardware, only the current ratio β moves.
    fn refit(&mut self) {
        let spec = match &self.drift {
            Some(state) => {
                let key = state
                    .key
                    .unwrap_or_else(|| state.plan.key_at(self.index, 0.0));
                state.plan.drifted_spec(&self.nominal_mtj, key)
            }
            None => self.nominal_mtj.clone(),
        };
        let cell = Cell::new(spec.into_device(), self.nominal_transistor);
        let design = DesignPoint::date2010(&cell);
        self.scheme = Scheme::for_kind(self.scheme.kind(), &design);
        self.telemetry.calib.refits += 1;
        self.telemetry.calib.last_beta = match self.scheme.kind() {
            SchemeKind::Conventional => 0.0,
            SchemeKind::Destructive => design.destructive.beta(),
            SchemeKind::Nondestructive => design.nondestructive.beta(),
        };
    }

    /// Senses every cell of `span` once through the retry policy, on the
    /// requesting stream's RNG. Returns the received word (bit `k` = cell
    /// `span.start + k`), the largest per-cell attempt count, the total
    /// attempts, and whether any cell fell back unconfidently.
    fn sense_word(&mut self, span: Range<usize>, stream: Stream) -> (u64, u32, u64, bool) {
        let scheme = self.scheme;
        let retry = self.retry;
        let cols = self.array.cols();
        let mut received = 0u64;
        let mut max_attempts = 1u32;
        let mut total_attempts = 0u64;
        let mut any_unconfident = false;
        for (k, cell) in span.enumerate() {
            let addr = Address::new(cell / cols, cell % cols);
            let array = &mut self.array;
            let rng = match stream {
                Stream::Demand => &mut self.rng,
                Stream::Scrub => &mut self.scrub_rng,
                Stream::March => &mut self.march_rng,
            };
            let resolution = retry.resolve(|| scheme.sense_once(array, addr, rng));
            max_attempts = max_attempts.max(resolution.attempts);
            total_attempts += u64::from(resolution.attempts);
            any_unconfident |= !resolution.confident;
            if resolution.bit {
                received |= 1u64 << k;
            }
        }
        (received, max_attempts, total_attempts, any_unconfident)
    }

    /// Materialises retention decay on every cell of `span`: each cell
    /// flips with the exponential-hazard probability of its idle span on
    /// the bank's busy-time clock, then has its clock reset. Draws nothing
    /// when retention faults are off.
    fn apply_retention(&mut self, span: Range<usize>, faults: &FaultPlan, stream: Stream) {
        if faults.retention_rate_per_ns.is_none() {
            return;
        }
        let now_ns = self.busy_now_ns();
        let cols = self.array.cols();
        for cell in span {
            let p = faults.retention_flip_prob(now_ns - self.last_touch_ns[cell]);
            self.last_touch_ns[cell] = now_ns;
            if p <= 0.0 {
                continue;
            }
            let rng = match stream {
                Stream::Demand => &mut self.fault_rng,
                Stream::Scrub => &mut self.scrub_rng,
                Stream::March => &mut self.march_rng,
            };
            if rng.gen_bool(p) {
                let addr = Address::new(cell / cols, cell % cols);
                let stored = self.array.read_state(addr).bit();
                self.array.write_bit(addr, !stored);
                self.telemetry.retention_flips += 1;
            }
        }
    }

    /// Read disturb: after a sense, each cell of the victim span flips with
    /// the plan's per-read probability. Draws nothing when disabled.
    fn apply_read_disturb(&mut self, span: Range<usize>, faults: &FaultPlan, stream: Stream) {
        let Some(p) = faults.read_disturb_prob else {
            return;
        };
        let cols = self.array.cols();
        for cell in span {
            let rng = match stream {
                Stream::Demand => &mut self.fault_rng,
                Stream::Scrub => &mut self.scrub_rng,
                Stream::March => &mut self.march_rng,
            };
            if rng.gen_bool(p) {
                let addr = Address::new(cell / cols, cell % cols);
                let stored = self.array.read_state(addr).bit();
                self.array.write_bit(addr, !stored);
                self.telemetry.read_disturb_flips += 1;
            }
        }
    }

    /// The bank's stored bits right now, row-major — the quantity the
    /// scheduler frontend's bit-identity property compares against serial
    /// replay.
    #[must_use]
    pub fn stored_bits(&self) -> Vec<bool> {
        self.array
            .addresses()
            .map(|addr| self.array.read_state(addr).bit())
            .collect()
    }

    /// Integrity audit: cells whose stored state disagrees with the host's
    /// truth mirror right now.
    #[must_use]
    pub fn audit_corrupted_bits(&self) -> u64 {
        self.array
            .addresses()
            .filter(|&addr| self.array.read_state(addr).bit() != self.truth[self.truth_index(addr)])
            .count() as u64
    }

    /// Re-pins every stuck cell to its defect value (a stuck MTJ "accepts"
    /// the pulse, then relaxes straight back).
    fn snap_stuck_cells(&mut self) {
        for &(addr, value) in &self.stuck {
            self.array.write_bit(addr, value);
        }
    }

    fn truth_index(&self, addr: Address) -> usize {
        addr.row * self.array.cols() + addr.col
    }

    fn addr_of(&self, cell: usize) -> Address {
        let cols = self.array.cols();
        Address::new(cell / cols, cell % cols)
    }

    /// The cell range of ECC word `word` (the last word may be partial; its
    /// missing bits are constant zeros on both sides of the codec).
    fn word_span(&self, word: usize) -> Range<usize> {
        let start = word * WORD_BITS;
        start..(start + WORD_BITS).min(self.truth.len())
    }

    fn busy_now_ns(&self) -> f64 {
        self.telemetry.busy_time.get() * 1e9
    }
}

/// The host-truth contents of ECC word `word` (bit `k` = cell
/// `word * 64 + k`; cells past the end of the bank read as zero).
fn truth_word(truth: &[bool], word: usize) -> u64 {
    let start = word * WORD_BITS;
    let mut bits = 0u64;
    for k in 0..WORD_BITS {
        if truth.get(start + k).copied().unwrap_or(false) {
            bits |= 1u64 << k;
        }
    }
    bits
}

/// Latency/energy of one programming pulse (decode + pulse + driver
/// overhead). `ChipTiming` only prices reads; writes are scheme-independent.
fn write_cost(timing: &ChipTiming) -> OperationCost {
    OperationCost::new(vec![
        Phase::new(
            PhaseKind::Decode,
            "decode + WL",
            timing.decode,
            timing.decode_current,
            timing.vdd,
        ),
        Phase::new(
            PhaseKind::Write,
            "program pulse",
            timing.write_pulse + timing.write_overhead,
            timing.write_current,
            timing.vdd,
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::ThermalTransient;
    use crate::reliability::EccMode;
    use stt_sense::SchemeKind;

    fn small_config(kind: SchemeKind, faults: &FaultPlan) -> ControllerConfig {
        ControllerConfig::small(kind, 1)
            .with_seed(77)
            .with_faults(faults.clone())
    }

    fn small_bank(kind: SchemeKind, faults: &FaultPlan) -> Bank {
        Bank::new(0, &small_config(kind, faults))
    }

    fn small_ecc_bank(kind: SchemeKind, faults: &FaultPlan) -> Bank {
        Bank::new(0, &small_config(kind, faults).with_ecc(EccMode::Secded))
    }

    #[test]
    fn a_fresh_bank_audits_clean() {
        for kind in SchemeKind::ALL {
            let bank = small_bank(kind, &FaultPlan::none());
            assert_eq!(bank.audit_corrupted_bits(), 0, "{kind}");
            assert!(!bank.has_ecc());
        }
    }

    #[test]
    fn writes_then_reads_round_trip() {
        let faults = FaultPlan::none();
        let mut bank = small_bank(SchemeKind::Nondestructive, &faults);
        let addr = Address::new(2, 5);
        for bit in [true, false, true] {
            bank.execute(&Transaction::write(0, addr, bit), &faults);
            bank.execute(&Transaction::read(0, addr), &faults);
        }
        assert_eq!(bank.telemetry().reads, 3);
        assert_eq!(bank.telemetry().writes, 3);
        assert_eq!(bank.telemetry().misreads, 0);
        assert_eq!(bank.audit_corrupted_bits(), 0);
    }

    #[test]
    fn read_latency_scales_with_attempts() {
        let faults = FaultPlan::none();
        let mut bank = small_bank(SchemeKind::Nondestructive, &faults);
        bank.execute(&Transaction::read(0, Address::new(1, 1)), &faults);
        let telemetry = bank.telemetry();
        // A single nondestructive read is 14 ns (ChipTiming::date2010 docs);
        // any retries add whole multiples of it.
        let attempts = 1 + telemetry.read_retries;
        let expected_ns = 14.0 * attempts as f64;
        assert!((telemetry.read_latency_ns.mean() - expected_ns).abs() < 1e-9);
    }

    #[test]
    fn stuck_cell_defeats_writes() {
        let addr = Address::new(3, 3);
        let faults = FaultPlan::none().with_stuck_cell(0, addr, false);
        let mut bank = small_bank(SchemeKind::Nondestructive, &faults);
        bank.execute(&Transaction::write(0, addr, true), &faults);
        bank.execute(&Transaction::read(0, addr), &faults);
        assert_eq!(
            bank.telemetry().misreads,
            1,
            "stuck-at-0 must defeat a write of 1"
        );
        assert!(bank.audit_corrupted_bits() >= 1);
    }

    #[test]
    fn power_cut_corrupts_destructive_reads_only() {
        // Cut every read; serve one read per scheme on a cell storing "1"
        // (the erase writes "0", so the destructive loss is visible).
        let addr = Address::new(4, 4);
        let faults = FaultPlan::none().with_power_cut_every(1);
        for kind in SchemeKind::ALL {
            let mut bank = small_bank(kind, &faults);
            bank.execute(&Transaction::write(0, addr, true), &faults);
            bank.execute(&Transaction::read(0, addr), &faults);
            let telemetry = bank.telemetry();
            assert_eq!(telemetry.power_cuts, 1, "{kind}");
            if kind == SchemeKind::Destructive {
                assert!(telemetry.corrupted_bits >= 1, "{kind}: erase must stick");
                assert!(bank.audit_corrupted_bits() >= 1, "{kind}");
            } else {
                assert_eq!(telemetry.corrupted_bits, 0, "{kind}: read path is inert");
                assert_eq!(bank.audit_corrupted_bits(), 0, "{kind}");
            }
        }
    }

    #[test]
    fn ecc_read_classifies_and_absorbs_a_stuck_cell() {
        // The 8×8 test array is exactly one ECC word. A stuck cell the host
        // writes against is a persistent single-bit error: without ECC it
        // is a misread, with ECC it is a corrected CE and the host gets the
        // right bit.
        let addr = Address::new(3, 3);
        let faults = FaultPlan::none().with_stuck_cell(0, addr, false);
        let mut bank = small_ecc_bank(SchemeKind::Nondestructive, &faults);
        assert!(bank.has_ecc());
        bank.execute(&Transaction::write(0, addr, true), &faults);
        bank.execute(&Transaction::read(0, addr), &faults);
        let ecc = &bank.telemetry().ecc;
        assert_eq!(ecc.corrected_ce, 1, "{ecc:?}");
        assert_eq!(ecc.detected_ue + ecc.silent_errors, 0);
        assert_eq!(
            bank.telemetry().misreads,
            0,
            "ECC must deliver the written bit despite the stuck cell"
        );
        assert_eq!(ecc.error_log.len(), 1);
        assert_eq!(ecc.error_log[0].kind, EccEventKind::DemandCe);
    }

    #[test]
    fn ecc_clean_reads_stay_clean() {
        let faults = FaultPlan::none();
        let mut bank = small_ecc_bank(SchemeKind::Nondestructive, &faults);
        for col in 0..4 {
            bank.execute(&Transaction::read(0, Address::new(0, col)), &faults);
        }
        let ecc = &bank.telemetry().ecc;
        assert_eq!(
            ecc.clean_reads + ecc.corrected_ce,
            4,
            "a healthy array decodes clean (or corrects a transient): {ecc:?}"
        );
        assert_eq!(ecc.detected_ue + ecc.silent_errors, 0);
        assert_eq!(bank.telemetry().misreads, 0);
        assert_eq!(ecc.words_total, 1);
    }

    #[test]
    fn ecc_word_read_charges_word_energy_single_read_latency() {
        let faults = FaultPlan::none();
        let mut bank = small_ecc_bank(SchemeKind::Nondestructive, &faults);
        bank.execute(&Transaction::read(0, Address::new(0, 0)), &faults);
        let telemetry = bank.telemetry();
        // 64 parallel sense amps: latency is one read times the slowest
        // cell's attempts, far below 64 serial reads.
        assert!(telemetry.read_latency_ns.mean() < 14.0 * 4.0);
        // Energy covers every cell of the word at least once. The single-cell
        // baseline may itself have retried (up to the policy's attempt cap),
        // so compare against a retry-robust multiple.
        let one_cell_read_energy = {
            let mut single = small_bank(SchemeKind::Nondestructive, &faults);
            single.execute(&Transaction::read(0, Address::new(0, 0)), &faults);
            single.telemetry().energy
        };
        assert!(telemetry.energy.get() >= one_cell_read_energy.get() * 8.0);
    }

    #[test]
    fn scrub_repairs_a_flipped_cell() {
        let faults = FaultPlan::none();
        let mut bank = small_ecc_bank(SchemeKind::Nondestructive, &faults);
        // Corrupt one stored cell behind the host's back (as a power cut or
        // retention flip would).
        let victim = Address::new(5, 5);
        let stored = bank.array.read_state(victim).bit();
        bank.array.write_bit(victim, !stored);
        assert_eq!(bank.audit_corrupted_bits(), 1);
        let outcome = bank.scrub_next(&faults).expect("ECC bank must scrub");
        assert!(outcome.corrected, "{outcome:?}");
        assert_eq!(outcome.cells_rewritten, 1);
        assert!(outcome.completed_pass, "single-word bank wraps every scan");
        assert_eq!(bank.audit_corrupted_bits(), 0, "scrub must repair in place");
        let ecc = &bank.telemetry().ecc;
        assert_eq!(ecc.scrub_ce_corrected, 1);
        assert_eq!(ecc.scrub_cells_rewritten, 1);
        assert_eq!(ecc.scrub_passes, 1);
    }

    #[test]
    fn scrub_without_ecc_is_refused() {
        let mut bank = small_bank(SchemeKind::Nondestructive, &FaultPlan::none());
        assert!(bank.scrub_next(&FaultPlan::none()).is_none());
    }

    #[test]
    fn scrub_on_a_healthy_bank_leaves_state_and_demand_stream_alone() {
        let faults = FaultPlan::none();
        let mut scrubbed = small_ecc_bank(SchemeKind::Nondestructive, &faults);
        let mut control = small_ecc_bank(SchemeKind::Nondestructive, &faults);
        for _ in 0..8 {
            let outcome = scrubbed.scrub_next(&faults).unwrap();
            assert_eq!(outcome.cells_rewritten, 0);
        }
        assert_eq!(scrubbed.stored_bits(), control.stored_bits());
        // Demand reads after scrubbing see the exact same RNG stream.
        let addr = Address::new(2, 2);
        for _ in 0..16 {
            scrubbed.execute(&Transaction::read(0, addr), &faults);
            control.execute(&Transaction::read(0, addr), &faults);
        }
        assert_eq!(scrubbed.telemetry().misreads, control.telemetry().misreads);
        assert_eq!(
            scrubbed.telemetry().read_retries,
            control.telemetry().read_retries
        );
    }

    #[test]
    fn retention_faults_flip_idle_cells_and_ecc_corrects_them() {
        // An aggressive decay rate against a bank kept busy by writes to one
        // cell: other cells of the word accumulate idle time and flip.
        let faults = FaultPlan::none().with_retention_rate(1e-3);
        let mut bank = small_ecc_bank(SchemeKind::Nondestructive, &faults);
        let hot = Address::new(0, 0);
        for k in 0..200 {
            bank.execute(&Transaction::write(0, hot, k % 2 == 0), &faults);
            bank.execute(&Transaction::read(0, hot), &faults);
        }
        assert!(
            bank.telemetry().retention_flips > 0,
            "accelerated decay must flip something"
        );
    }

    #[test]
    fn read_disturb_flips_are_counted() {
        let faults = FaultPlan::none().with_read_disturb(0.2);
        let mut bank = small_bank(SchemeKind::Nondestructive, &faults);
        let addr = Address::new(1, 1);
        for _ in 0..50 {
            bank.execute(&Transaction::read(0, addr), &faults);
        }
        assert!(bank.telemetry().read_disturb_flips > 0);
    }

    #[test]
    fn soft_fault_streams_leave_quiet_plans_bit_identical() {
        // A plan with soft-error models *present but the bank untouched by
        // them* must not perturb the demand stream: same seed, same reads,
        // same outcomes as a no-fault run.
        let quiet = FaultPlan::none();
        let mut a = small_bank(SchemeKind::Nondestructive, &quiet);
        let mut b = small_bank(SchemeKind::Nondestructive, &quiet);
        for col in 0..8 {
            let addr = Address::new(4, col);
            a.execute(&Transaction::read(0, addr), &quiet);
            b.execute(&Transaction::read(0, addr), &quiet);
        }
        assert_eq!(a.telemetry(), b.telemetry());
        assert_eq!(a.stored_bits(), b.stored_bits());
    }

    #[test]
    fn transition_fault_silently_loses_the_failing_direction() {
        let addr = Address::new(2, 6);
        let faults = FaultPlan::none().with_transition_fault(0, addr, true);
        let mut bank = small_bank(SchemeKind::Nondestructive, &faults);
        // Falling writes are healthy (the fault is rising-only)...
        bank.execute(&Transaction::write(0, addr, false), &faults);
        assert_eq!(bank.telemetry().write_transition_faults, 0);
        assert!(!bank.array.read_state(addr).bit());
        // ...but the 0→1 transition is silently lost: one pulse charged,
        // the array unchanged, the truth mirror fooled.
        bank.execute(&Transaction::write(0, addr, true), &faults);
        assert_eq!(bank.telemetry().write_transition_faults, 1);
        assert!(
            !bank.array.read_state(addr).bit(),
            "the write must not land"
        );
        bank.execute(&Transaction::read(0, addr), &faults);
        assert_eq!(bank.telemetry().misreads, 1, "the host sees stale data");
        assert!(bank.audit_corrupted_bits() >= 1);
    }

    #[test]
    fn backhopping_flips_a_completed_write() {
        let addr = Address::new(5, 2);
        let faults = FaultPlan::none().with_backhop(0, addr, 1.0);
        let mut bank = small_bank(SchemeKind::Nondestructive, &faults);
        bank.execute(&Transaction::write(0, addr, true), &faults);
        assert_eq!(bank.telemetry().backhop_flips, 1);
        assert!(
            !bank.array.read_state(addr).bit(),
            "a p=1 backhop must undo every completed write"
        );
        assert!(bank.audit_corrupted_bits() >= 1);
    }

    #[test]
    fn state_coupling_forces_the_victim_on_aggressor_writes() {
        // The 8×8 test array is one 64-bit word: aggressor bit 4 is cell
        // (0,4), victim bit 11 is cell (1,3).
        let aggressor = Address::new(0, 4);
        let victim = Address::new(1, 3);
        let faults = FaultPlan::none().with_coupling_fault(
            0,
            0,
            4,
            11,
            CouplingKind::State {
                aggressor_value: true,
                victim_value: true,
            },
        );
        let mut bank = small_bank(SchemeKind::Nondestructive, &faults);
        bank.execute(&Transaction::write(0, victim, false), &faults);
        let triggers_before = bank.telemetry().coupling_triggers;
        bank.execute(&Transaction::write(0, aggressor, true), &faults);
        assert_eq!(bank.telemetry().coupling_triggers, triggers_before + 1);
        assert!(
            bank.array.read_state(victim).bit(),
            "the victim must be forced to the coupled value"
        );
        assert!(bank.audit_corrupted_bits() >= 1, "the host never wrote it");
    }

    #[test]
    fn disturb_coupling_needs_a_non_transition_write_to_fire() {
        let aggressor = Address::new(0, 4);
        let victim = Address::new(1, 3);
        let faults = FaultPlan::none().with_coupling_fault(
            0,
            0,
            4,
            11,
            CouplingKind::Disturb { victim_value: true },
        );
        let mut bank = small_bank(SchemeKind::Nondestructive, &faults);
        bank.execute(&Transaction::write(0, victim, false), &faults);
        bank.execute(&Transaction::write(0, aggressor, false), &faults);
        // The transition write 0→1 does not sensitise CFds...
        bank.execute(&Transaction::write(0, aggressor, true), &faults);
        assert_eq!(bank.telemetry().coupling_triggers, 0);
        assert!(!bank.array.read_state(victim).bit());
        // ...the non-transition w1 does.
        bank.execute(&Transaction::write(0, aggressor, true), &faults);
        assert_eq!(bank.telemetry().coupling_triggers, 1);
        assert!(bank.array.read_state(victim).bit());
    }

    #[test]
    fn a_pinhole_cell_senses_zero_under_every_scheme() {
        let addr = Address::new(3, 2);
        let faults = FaultPlan::none().with_pinhole(0, addr);
        for kind in SchemeKind::ALL {
            let mut bank = small_bank(kind, &faults);
            // The write datapath works (verified by state read-back), but
            // the collapsed TMR leaves nothing for the sense amp to see.
            bank.execute(&Transaction::write(0, addr, true), &faults);
            bank.execute(&Transaction::read(0, addr), &faults);
            assert_eq!(
                bank.telemetry().misreads,
                1,
                "{kind}: a stored 1 must sense as 0 through a pinhole"
            );
        }
    }

    /// A step hot-spot on bank 0 from t = 0: +60 K at tc = 0.01/K
    /// flattens the high-state roll-off to ~62 % of its calibrated reach,
    /// driving the static-β nondestructive stored-1 margin decisively
    /// negative (≈ −3.6 mV): every stored-1 read misreads. A refit β
    /// re-equalises both margins at ≈ +3.3 mV — bit-correct again, though
    /// still inside the 8 mV confidence guard band, so retry pressure
    /// (the daemon's trip signal) persists while the hot-spot holds.
    fn hot_plan() -> DriftPlan {
        DriftPlan::quiet().with_transient(ThermalTransient {
            bank: 0,
            start_ns: 0.0,
            ramp_ns: 0.0,
            hold_ns: 1e12,
            fall_ns: 0.0,
            amplitude_k: 60.0,
        })
    }

    fn hammer_reads(bank: &mut Bank, addr: Address, reads: usize, faults: &FaultPlan) {
        for _ in 0..reads {
            bank.execute(&Transaction::read(0, addr), faults);
        }
    }

    #[test]
    fn thermal_drift_degrades_static_beta_reads() {
        let faults = FaultPlan::none();
        let addr = Address::new(2, 2);
        let config = small_config(SchemeKind::Nondestructive, &faults).with_drift(hot_plan());
        let mut bank = Bank::new(0, &config);
        bank.execute(&Transaction::write(0, addr, true), &faults);
        hammer_reads(&mut bank, addr, 40, &faults);
        let telemetry = bank.telemetry();
        assert!(
            telemetry.misreads + telemetry.unconfident_reads > 10,
            "a 150 K excursion must collapse the stored-1 margin under the \
             design-time beta (got {} misreads, {} unconfident)",
            telemetry.misreads,
            telemetry.unconfident_reads
        );
    }

    #[test]
    fn quiet_drift_plan_is_bit_identical_to_no_plan() {
        let faults = FaultPlan::none();
        let config = small_config(SchemeKind::Nondestructive, &faults);
        let mut plain = Bank::new(0, &config);
        let mut quiet = Bank::new(0, &config.clone().with_drift(DriftPlan::quiet()));
        for k in 0..50 {
            let addr = Address::new(k % 8, (3 * k) % 8);
            let txn = if k % 3 == 0 {
                Transaction::write(0, addr, k % 2 == 0)
            } else {
                Transaction::read(0, addr)
            };
            plain.execute(&txn, &faults);
            quiet.execute(&txn, &faults);
        }
        assert_eq!(plain.telemetry(), quiet.telemetry());
        assert_eq!(plain.stored_bits(), quiet.stored_bits());
    }

    #[test]
    fn inline_calibration_trips_and_recovers_the_misread_rate() {
        let faults = FaultPlan::none();
        let addr = Address::new(2, 2);
        let base = small_config(SchemeKind::Nondestructive, &faults).with_drift(hot_plan());
        let calibrated_config = base.clone().with_calib(CalibConfig::date2010());

        let mut statics = Bank::new(0, &base);
        let mut calibrated = Bank::new(0, &calibrated_config);
        for bank in [&mut statics, &mut calibrated] {
            bank.execute(&Transaction::write(0, addr, true), &faults);
            hammer_reads(bank, addr, 192, &faults);
        }
        // Static β under the hot-spot: the stored-1 margin is negative, so
        // every one of the 192 reads delivers the wrong bit.
        assert_eq!(statics.telemetry().misreads, 192);
        let calib = &calibrated.telemetry().calib;
        assert!(calib.trips >= 1, "the error rate must trip the daemon");
        assert_eq!(calib.bursts, calib.trips);
        assert_eq!(calib.refits, calib.trips);
        assert_eq!(calib.burst_reads, 32 * calib.bursts);
        assert!(calib.busy_time.get() > 0.0);
        assert!(
            calib.last_beta > 1.9 && calib.last_beta < 2.3,
            "the refit beta stays near the paper's operating point, got {}",
            calib.last_beta
        );
        // The first trip fires one check window (64 reads) in; from the
        // refit onward the delivered bits are correct again.
        let misread_calibrated = calibrated.telemetry().misreads;
        assert!(
            misread_calibrated * 2 < statics.telemetry().misreads,
            "recalibration must recover most of the misread rate \
             (static {}, calibrated {misread_calibrated})",
            statics.telemetry().misreads
        );
        // The hot-spot narrows the sensing window below the 8 mV guard
        // band, so reads stay retry-resolved (unconfident) even after the
        // refit — exactly the standing signal the trip detector watches.
        assert!(
            calibrated.telemetry().unconfident_reads > misread_calibrated,
            "retry pressure persists while the transient holds"
        );
        assert_eq!(
            calibrated.audit_corrupted_bits(),
            0,
            "calibration bursts are read-only"
        );
    }

    #[test]
    fn calibration_tick_is_the_frontend_entry_point() {
        let faults = FaultPlan::none();
        let addr = Address::new(2, 2);
        // Drift, no inline daemon: the frontend owns the trip decision.
        let config = small_config(SchemeKind::Nondestructive, &faults).with_drift(hot_plan());
        let mut bank = Bank::new(0, &config);
        let calib = CalibConfig::date2010();
        assert!(
            !bank.calibration_tick(&calib),
            "no reads yet, nothing to trip on"
        );
        bank.execute(&Transaction::write(0, addr, true), &faults);
        hammer_reads(&mut bank, addr, 40, &faults);
        assert!(bank.calibration_tick(&calib), "a 25 %+ error rate trips");
        assert_eq!(bank.telemetry().calib.refits, 1);
        assert!(
            !bank.calibration_tick(&calib),
            "the mark advanced: no new reads, no second trip"
        );
    }

    #[test]
    fn raw_march_reads_bypass_the_codec() {
        let addr = Address::new(3, 3); // row-major cell 27
        let faults = FaultPlan::none().with_stuck_cell(0, addr, false);
        // Decoded reads: SECDED absorbs the single stuck cell, the tester
        // sees a passing part. Raw reads: the defect is observed directly.
        let mut decoded = small_ecc_bank(SchemeKind::Nondestructive, &faults);
        decoded.execute_march_op(27, MarchOp::W(true), 1, false, &faults);
        decoded.execute_march_op(27, MarchOp::R(true), 1, false, &faults);
        assert_eq!(
            decoded.telemetry().march.mismatches,
            0,
            "the codec must absorb a single stuck cell on the decoded path"
        );
        let mut raw = small_ecc_bank(SchemeKind::Nondestructive, &faults);
        raw.execute_march_op(27, MarchOp::W(true), 1, true, &faults);
        raw.execute_march_op(27, MarchOp::R(true), 1, true, &faults);
        assert_eq!(
            raw.telemetry().march.mismatches,
            1,
            "raw mode must observe the stuck cell the codec hides"
        );
    }

    #[test]
    fn execute_march_op_attributes_failures_to_elements() {
        let addr = Address::new(3, 3); // row-major cell 27
        let faults = FaultPlan::none().with_stuck_cell(0, addr, false);
        let mut bank = small_bank(SchemeKind::Nondestructive, &faults);
        bank.execute_march_op(27, MarchOp::W(true), 1, false, &faults);
        bank.execute_march_op(27, MarchOp::R(true), 1, false, &faults);
        let march = &bank.telemetry().march;
        assert_eq!(march.ops, 2);
        assert_eq!((march.writes, march.reads), (1, 1));
        assert_eq!(march.mismatches, 1, "a stuck-at-0 cell cannot read 1");
        assert!(march.failing_cells.contains(&27));
        assert_eq!(march.fail_log[0].element, 1);
        assert!(!march.fail_log[0].got);
        assert!(march.busy_time.get() > 0.0);
    }
}
