//! One bank: a sampled array, its own RNG, and the logic that serves a
//! transaction end to end.
//!
//! A bank owns everything it touches — cell array, ground-truth mirror,
//! telemetry, random stream — so banks can be driven from different threads
//! with no sharing at all. Its RNG is seeded from `(controller seed, bank
//! index)` with the same SplitMix64 scrambling as the Monte-Carlo runner,
//! which is what makes an N-thread run bit-identical to a serial one.

use std::cell::RefCell;

use rand::rngs::StdRng;
use rand::Rng;
use stt_array::{
    run_with_power_failure, Address, Array, ArraySpec, OperationCost, OperationStep, Phase,
    PhaseKind, PowerFailure,
};
use stt_sense::{ChipTiming, DesignPoint, SchemeKind};

use crate::faults::FaultPlan;
use crate::retry::RetryPolicy;
use crate::sense::Scheme;
use crate::telemetry::{BankTelemetry, LatencyBounds};
use crate::txn::{Op, Transaction};

/// Programming pulses a write may burn before the controller declares the
/// cell unwritable (`(1 − p_switch)⁸` residual failure).
const MAX_WRITE_ATTEMPTS: u32 = 8;

/// One independently-addressable bank of the controller.
#[derive(Debug)]
pub struct Bank {
    index: usize,
    array: Array,
    /// What the host believes each cell holds (row-major).
    truth: Vec<bool>,
    rng: StdRng,
    scheme: Scheme,
    retry: RetryPolicy,
    /// Stuck-at defects on this bank, pre-filtered from the fault plan.
    stuck: Vec<(Address, bool)>,
    read_cost: OperationCost,
    write_cost: OperationCost,
    telemetry: BankTelemetry,
    reads_served: u64,
}

impl Bank {
    /// Samples and initialises bank `index`.
    ///
    /// The array is filled with a random pattern (ideal preload writes, not
    /// traffic), stuck cells are snapped to their defect value, and the
    /// host's truth mirror starts equal to the actual stored state — so
    /// every misread and corrupted bit the telemetry later reports was
    /// caused by served traffic, not initial conditions.
    #[must_use]
    pub fn new(
        index: usize,
        spec: &ArraySpec,
        kind: SchemeKind,
        retry: RetryPolicy,
        faults: &FaultPlan,
        seed: u64,
        bounds: &LatencyBounds,
    ) -> Self {
        let mut rng = stt_stats::trial_rng(seed, index);
        let mut array = spec.sample(&mut rng);
        let mut truth = vec![false; spec.capacity_bits()];
        let cols = spec.cols;
        for addr in array.addresses().collect::<Vec<_>>() {
            let bit = rng.gen_bool(0.5);
            array.write_bit(addr, bit);
            truth[addr.row * cols + addr.col] = bit;
        }
        let stuck: Vec<(Address, bool)> = faults
            .stuck_cells_of(index)
            .map(|cell| (cell.addr, cell.value))
            .collect();
        for &(addr, value) in &stuck {
            array.write_bit(addr, value);
            truth[addr.row * cols + addr.col] = value;
        }
        let design = DesignPoint::date2010(&spec.cell.nominal_cell());
        let timing = ChipTiming::date2010();
        Self {
            index,
            array,
            truth,
            rng,
            scheme: Scheme::for_kind(kind, &design),
            retry,
            stuck,
            read_cost: timing.read_cost(kind, &design),
            write_cost: write_cost(&timing),
            telemetry: BankTelemetry::with_bounds(bounds),
            reads_served: 0,
        }
    }

    /// This bank's index in the controller.
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// Telemetry accumulated so far.
    #[must_use]
    pub fn telemetry(&self) -> &BankTelemetry {
        &self.telemetry
    }

    /// Serves one transaction.
    ///
    /// # Panics
    ///
    /// Panics if the transaction's address is out of this bank's range.
    pub fn execute(&mut self, txn: &Transaction, faults: &FaultPlan) {
        match txn.op {
            Op::Read => self.serve_read(txn.addr, faults),
            Op::Write(bit) => self.serve_write(txn.addr, bit),
        }
    }

    fn serve_read(&mut self, addr: Address, faults: &FaultPlan) {
        self.reads_served += 1;
        self.telemetry.reads += 1;
        if faults.cuts_power_on(self.reads_served) {
            self.serve_read_with_power_cut(addr);
            return;
        }
        let scheme = self.scheme;
        let retry = self.retry;
        let (array, rng) = (&mut self.array, &mut self.rng);
        let resolution = retry.resolve(|| scheme.sense_once(array, addr, rng));
        if scheme.is_destructive() {
            // The erase/write-back pulses may have hit a stuck cell.
            self.snap_stuck_cells();
        }
        self.telemetry.read_retries += u64::from(resolution.retries());
        if !resolution.confident {
            self.telemetry.unconfident_reads += 1;
        }
        if resolution.bit != self.truth[self.truth_index(addr)] {
            self.telemetry.misreads += 1;
        }
        let latency = self.read_cost.latency() * f64::from(resolution.attempts);
        let energy = self.read_cost.energy() * f64::from(resolution.attempts);
        self.telemetry.record_read_latency(latency);
        self.telemetry.busy_time += latency;
        self.telemetry.energy += energy;
    }

    /// A read interrupted by a power cut. The scheme's sequence is built as
    /// separate steps and cut at the scheme's most vulnerable point: for
    /// the destructive scheme that is after the erase (the §I window), for
    /// the read-only schemes any point — no step mutates state either way.
    /// The aborted read delivers no bit and charges no latency: the rail is
    /// down.
    fn serve_read_with_power_cut(&mut self, addr: Address) {
        self.telemetry.power_cuts += 1;
        let scheme = self.scheme;
        let sensed = scheme.sense_readonly(&self.array, addr, &mut self.rng);
        let rng = RefCell::new(&mut self.rng);
        let steps: Vec<OperationStep<'_>> = if scheme.is_destructive() {
            vec![
                Box::new(|_a: &mut Array| {}), // read 1: V_BL1 onto C1
                Box::new(|a: &mut Array| {
                    a.write_bit_pulsed(addr, false, &mut **rng.borrow_mut());
                }),
                Box::new(|_a: &mut Array| {}), // read 2 + compare
                Box::new(|a: &mut Array| {
                    a.write_bit_pulsed(addr, sensed.bit, &mut **rng.borrow_mut());
                }),
            ]
        } else {
            // Two sampling phases and the sense — none touches the cell.
            vec![
                Box::new(|_a: &mut Array| {}),
                Box::new(|_a: &mut Array| {}),
                Box::new(|_a: &mut Array| {}),
            ]
        };
        let outcome = run_with_power_failure(&mut self.array, steps, PowerFailure::after_step(1));
        self.telemetry.corrupted_bits += outcome.corrupted.len() as u64;
        self.snap_stuck_cells();
    }

    fn serve_write(&mut self, addr: Address, bit: bool) {
        self.telemetry.writes += 1;
        let pulses = self
            .array
            .write_bit_verified(addr, bit, MAX_WRITE_ATTEMPTS, &mut self.rng);
        let pulses_burned = match pulses {
            Some(used) => {
                self.telemetry.write_retries += u64::from(used - 1);
                used
            }
            None => {
                self.telemetry.write_failures += 1;
                MAX_WRITE_ATTEMPTS
            }
        };
        let index = self.truth_index(addr);
        self.truth[index] = bit;
        self.snap_stuck_cells();
        self.telemetry.busy_time += self.write_cost.latency() * f64::from(pulses_burned);
        self.telemetry.energy += self.write_cost.energy() * f64::from(pulses_burned);
    }

    /// The bank's stored bits right now, row-major — the quantity the
    /// scheduler frontend's bit-identity property compares against serial
    /// replay.
    #[must_use]
    pub fn stored_bits(&self) -> Vec<bool> {
        self.array
            .addresses()
            .map(|addr| self.array.read_state(addr).bit())
            .collect()
    }

    /// Integrity audit: cells whose stored state disagrees with the host's
    /// truth mirror right now.
    #[must_use]
    pub fn audit_corrupted_bits(&self) -> u64 {
        self.array
            .addresses()
            .filter(|&addr| self.array.read_state(addr).bit() != self.truth[self.truth_index(addr)])
            .count() as u64
    }

    /// Re-pins every stuck cell to its defect value (a stuck MTJ "accepts"
    /// the pulse, then relaxes straight back).
    fn snap_stuck_cells(&mut self) {
        for &(addr, value) in &self.stuck {
            self.array.write_bit(addr, value);
        }
    }

    fn truth_index(&self, addr: Address) -> usize {
        addr.row * self.array.cols() + addr.col
    }
}

/// Latency/energy of one programming pulse (decode + pulse + driver
/// overhead). `ChipTiming` only prices reads; writes are scheme-independent.
fn write_cost(timing: &ChipTiming) -> OperationCost {
    OperationCost::new(vec![
        Phase::new(
            PhaseKind::Decode,
            "decode + WL",
            timing.decode,
            timing.decode_current,
            timing.vdd,
        ),
        Phase::new(
            PhaseKind::Write,
            "program pulse",
            timing.write_pulse + timing.write_overhead,
            timing.write_current,
            timing.vdd,
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_bank(kind: SchemeKind, faults: &FaultPlan) -> Bank {
        Bank::new(
            0,
            &ArraySpec::small_test_array(),
            kind,
            RetryPolicy::date2010(),
            faults,
            77,
            &LatencyBounds::date2010(),
        )
    }

    #[test]
    fn a_fresh_bank_audits_clean() {
        for kind in SchemeKind::ALL {
            let bank = small_bank(kind, &FaultPlan::none());
            assert_eq!(bank.audit_corrupted_bits(), 0, "{kind}");
        }
    }

    #[test]
    fn writes_then_reads_round_trip() {
        let faults = FaultPlan::none();
        let mut bank = small_bank(SchemeKind::Nondestructive, &faults);
        let addr = Address::new(2, 5);
        for bit in [true, false, true] {
            bank.execute(&Transaction::write(0, addr, bit), &faults);
            bank.execute(&Transaction::read(0, addr), &faults);
        }
        assert_eq!(bank.telemetry().reads, 3);
        assert_eq!(bank.telemetry().writes, 3);
        assert_eq!(bank.telemetry().misreads, 0);
        assert_eq!(bank.audit_corrupted_bits(), 0);
    }

    #[test]
    fn read_latency_scales_with_attempts() {
        let faults = FaultPlan::none();
        let mut bank = small_bank(SchemeKind::Nondestructive, &faults);
        bank.execute(&Transaction::read(0, Address::new(1, 1)), &faults);
        let telemetry = bank.telemetry();
        // A single nondestructive read is 14 ns (ChipTiming::date2010 docs);
        // any retries add whole multiples of it.
        let attempts = 1 + telemetry.read_retries;
        let expected_ns = 14.0 * attempts as f64;
        assert!((telemetry.read_latency_ns.mean() - expected_ns).abs() < 1e-9);
    }

    #[test]
    fn stuck_cell_defeats_writes() {
        let addr = Address::new(3, 3);
        let faults = FaultPlan::none().with_stuck_cell(0, addr, false);
        let mut bank = small_bank(SchemeKind::Nondestructive, &faults);
        bank.execute(&Transaction::write(0, addr, true), &faults);
        bank.execute(&Transaction::read(0, addr), &faults);
        assert_eq!(
            bank.telemetry().misreads,
            1,
            "stuck-at-0 must defeat a write of 1"
        );
        assert!(bank.audit_corrupted_bits() >= 1);
    }

    #[test]
    fn power_cut_corrupts_destructive_reads_only() {
        // Cut every read; serve one read per scheme on a cell storing "1"
        // (the erase writes "0", so the destructive loss is visible).
        let addr = Address::new(4, 4);
        let faults = FaultPlan::none().with_power_cut_every(1);
        for kind in SchemeKind::ALL {
            let mut bank = small_bank(kind, &faults);
            bank.execute(&Transaction::write(0, addr, true), &faults);
            bank.execute(&Transaction::read(0, addr), &faults);
            let telemetry = bank.telemetry();
            assert_eq!(telemetry.power_cuts, 1, "{kind}");
            if kind == SchemeKind::Destructive {
                assert!(telemetry.corrupted_bits >= 1, "{kind}: erase must stick");
                assert!(bank.audit_corrupted_bits() >= 1, "{kind}");
            } else {
                assert_eq!(telemetry.corrupted_bits, 0, "{kind}: read path is inert");
                assert_eq!(bank.audit_corrupted_bits(), 0, "{kind}");
            }
        }
    }
}
