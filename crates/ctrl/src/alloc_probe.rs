//! Heap-allocation counting hook for allocation-free assertions.
//!
//! The scheduler frontend claims its steady-state event loop performs **no
//! heap allocation** (DESIGN.md §12). That claim is only worth having if it
//! is asserted, and asserting it needs a counting allocator — but this crate
//! forbids `unsafe`, and a `#[global_allocator]` cannot be written without
//! it. The split: this module owns a process-global atomic counter with a
//! safe API, and the *bench binary* (which may use `unsafe`) installs a
//! `GlobalAlloc` wrapper that calls [`on_alloc`] on every allocation.
//!
//! When no counting allocator is installed the counter simply never moves,
//! so [`SchedRun::steady_state_allocs`](crate::sched::SchedRun) reads zero
//! and the assertion is vacuously true; under the bench's counting allocator
//! it becomes a real regression gate.

use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Records one heap allocation. Called by an instrumented global allocator;
/// never called by this crate itself.
#[inline]
pub fn on_alloc() {
    ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
}

/// Total allocations recorded so far (monotone; wraps only after 2⁶⁴).
#[must_use]
pub fn count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotone() {
        let before = count();
        on_alloc();
        on_alloc();
        // Other test threads may also bump it; only monotonicity is ours.
        assert!(count() >= before + 2);
    }
}
