//! Fault injection at the controller level.
//!
//! Two fault families, both reusing the array crate's machinery:
//!
//! * **Power cuts** — every Nth read on a bank is interrupted mid-sequence
//!   via [`stt_array::run_with_power_failure`]. For the destructive scheme
//!   the cut lands in the §I vulnerability window (after the erase, before
//!   the write-back), so stored data is physically lost; conventional and
//!   nondestructive reads have no state-mutating steps and shrug the cut
//!   off. This is the paper's core reliability argument, driven by traffic
//!   instead of a standalone experiment.
//! * **Stuck cells** — manufacturing defects pinned to one state. Writes to
//!   a stuck cell appear to succeed but the cell snaps back, so reads
//!   return the stuck value — the misreads an ECC/map-out layer would have
//!   to absorb.
//!
//! Two more families come from the STT-MRAM testing literature (Wu et al.,
//! 2020 survey), both drawn on a **dedicated per-bank fault RNG stream** so
//! enabling them never perturbs sense or write randomness:
//!
//! * **Retention failures** — thermally-activated bit flips while a cell
//!   sits idle. Modelled as a per-cell exponential hazard over the bank's
//!   accumulated *busy time* (not wall time, so serial, parallel and
//!   event-driven dispatch stay bit-identical): when an access touches a
//!   cell that has been idle for `dt` ns, it first flips with probability
//!   `1 − exp(−rate·dt)`.
//! * **Read disturb** — the read current of every sensed cell nudges its own
//!   free layer; each cell of a read word flips with a fixed probability per
//!   read. Unlike retention this only hits words traffic actually touches.

use serde::{Deserialize, Serialize};
use stt_array::Address;
use stt_mtj::{LinearRolloff, MtjSpec, ThermalModel, T_REFERENCE};

use crate::reliability::WORD_BITS;

/// A stuck-at defect on one cell of one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StuckCell {
    /// Bank index.
    pub bank: usize,
    /// Cell address within the bank.
    pub addr: Address,
    /// The value the cell is pinned to.
    pub value: bool,
}

/// A write transition fault (WTF) on one cell: the write pulse in one
/// direction silently fails, so the cell keeps its old value while the
/// controller believes the write succeeded (Wu et al. §IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransitionFault {
    /// Bank index.
    pub bank: usize,
    /// Cell address within the bank.
    pub addr: Address,
    /// Which transition fails: `true` = the 0→1 (rising) write is lost,
    /// `false` = the 1→0 (falling) write is lost. Writes in the healthy
    /// direction, and writes that do not transition, behave normally.
    pub rising: bool,
}

/// Which intra-word coupling mechanism a [`CouplingFault`] models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CouplingKind {
    /// State coupling fault (CFst): whenever a write leaves the aggressor
    /// holding `aggressor_value`, the victim is forced to `victim_value`.
    State {
        /// The aggressor state that triggers the fault.
        aggressor_value: bool,
        /// The value forced onto the victim.
        victim_value: bool,
    },
    /// Disturb coupling fault (CFds): a **non-transition `w1`** on the
    /// aggressor (writing 1 onto a cell already holding 1) forces the
    /// victim to `victim_value`. March C– never performs a non-transition
    /// write after its initialisation element, so this is the class it
    /// provably cannot sensitise; March SS's `…,w0,…`/`…,w1,…`
    /// non-transition writes exist precisely to catch it.
    Disturb {
        /// The value forced onto the victim.
        victim_value: bool,
    },
}

/// An intra-word coupling defect between two bit positions of one ECC word
/// (adjacent physical columns share write-line return paths; a short couples
/// an aggressor cell's write to its neighbour).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CouplingFault {
    /// Bank index.
    pub bank: usize,
    /// ECC-word index within the bank (row-major groups of
    /// [`crate::reliability::WORD_BITS`] cells).
    pub word: usize,
    /// Aggressor bit position within the word (`0..WORD_BITS`).
    pub aggressor_bit: usize,
    /// Victim bit position within the word (`0..WORD_BITS`, distinct from
    /// the aggressor).
    pub victim_bit: usize,
    /// The coupling mechanism.
    pub kind: CouplingKind,
}

/// A pinhole defect: an MgO-barrier short collapses the TMR, so the high
/// state has neither resistance contrast nor roll-off contrast against the
/// low state. Every sensing scheme reads the cell as "0" regardless of what
/// was written — electrically a stuck-at-0 with a healthy-looking write
/// path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PinholeCell {
    /// Bank index.
    pub bank: usize,
    /// Cell address within the bank.
    pub addr: Address,
}

/// A backhopping defect: the write pulse succeeds, but the free layer hops
/// back to the opposite state with probability `prob` before the next
/// access — a probabilistic write fault no single March pass can cover.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackhopCell {
    /// Bank index.
    pub bank: usize,
    /// Cell address within the bank.
    pub addr: Address,
    /// Probability that a completed write flips back.
    pub prob: f64,
}

/// What to inject while serving a trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Cut power mid-sequence on every Nth read of each bank
    /// (`None` = never). The count is per bank, so the plan is independent
    /// of how transactions interleave across banks.
    pub power_cut_every: Option<u64>,
    /// Manufacturing defects.
    pub stuck_cells: Vec<StuckCell>,
    /// Retention-failure hazard rate per cell, per nanosecond of bank busy
    /// time (`None` = perfect retention). Real rates are astronomically
    /// small; campaign values are accelerated so failures appear within a
    /// trace, like a bake test.
    #[serde(default)]
    pub retention_rate_per_ns: Option<f64>,
    /// Probability that one read flips each sensed cell of the victim word
    /// (`None` = no read disturb).
    #[serde(default)]
    pub read_disturb_prob: Option<f64>,
    /// Write transition faults (per-direction silent write failures).
    #[serde(default)]
    pub transition_faults: Vec<TransitionFault>,
    /// Intra-word coupling defects (CFst / CFds).
    #[serde(default)]
    pub coupling_faults: Vec<CouplingFault>,
    /// Pinhole (TMR-collapse) defects.
    #[serde(default)]
    pub pinhole_cells: Vec<PinholeCell>,
    /// Backhopping defects (probabilistic post-write flip-back).
    #[serde(default)]
    pub backhop_cells: Vec<BackhopCell>,
}

impl FaultPlan {
    /// No faults.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Cut power on every `every`-th read per bank.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    #[must_use]
    pub fn with_power_cut_every(mut self, every: u64) -> Self {
        assert!(every > 0, "power-cut cadence must be at least 1");
        self.power_cut_every = Some(every);
        self
    }

    /// Adds a stuck-at defect.
    #[must_use]
    pub fn with_stuck_cell(mut self, bank: usize, addr: Address, value: bool) -> Self {
        self.stuck_cells.push(StuckCell { bank, addr, value });
        self
    }

    /// Sets the retention-failure hazard rate (flips per cell per
    /// nanosecond of bank busy time).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not finite and positive.
    #[must_use]
    pub fn with_retention_rate(mut self, rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "retention rate must be positive, got {rate}"
        );
        self.retention_rate_per_ns = Some(rate);
        self
    }

    /// Sets the per-read, per-cell read-disturb flip probability.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is not in `(0, 1]`.
    #[must_use]
    pub fn with_read_disturb(mut self, prob: f64) -> Self {
        assert!(
            prob.is_finite() && prob > 0.0 && prob <= 1.0,
            "read-disturb probability must be in (0, 1], got {prob}"
        );
        self.read_disturb_prob = Some(prob);
        self
    }

    /// Adds a write transition fault: the write in the failing direction
    /// (`rising` = 0→1) silently leaves the cell unchanged.
    #[must_use]
    pub fn with_transition_fault(mut self, bank: usize, addr: Address, rising: bool) -> Self {
        self.transition_faults
            .push(TransitionFault { bank, addr, rising });
        self
    }

    /// Adds an intra-word coupling defect between two bit positions of ECC
    /// word `word`.
    ///
    /// # Panics
    ///
    /// Panics if either bit position is outside `0..WORD_BITS` or the
    /// aggressor and victim coincide.
    #[must_use]
    pub fn with_coupling_fault(
        mut self,
        bank: usize,
        word: usize,
        aggressor_bit: usize,
        victim_bit: usize,
        kind: CouplingKind,
    ) -> Self {
        assert!(
            aggressor_bit < WORD_BITS && victim_bit < WORD_BITS,
            "coupling bit positions must be inside one {WORD_BITS}-bit word, \
             got {aggressor_bit}/{victim_bit}"
        );
        assert_ne!(aggressor_bit, victim_bit, "a cell cannot couple to itself");
        self.coupling_faults.push(CouplingFault {
            bank,
            word,
            aggressor_bit,
            victim_bit,
            kind,
        });
        self
    }

    /// Adds a pinhole (TMR-collapse) defect.
    #[must_use]
    pub fn with_pinhole(mut self, bank: usize, addr: Address) -> Self {
        self.pinhole_cells.push(PinholeCell { bank, addr });
        self
    }

    /// Adds a backhopping defect with post-write flip-back probability
    /// `prob`.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is not in `(0, 1]`.
    #[must_use]
    pub fn with_backhop(mut self, bank: usize, addr: Address, prob: f64) -> Self {
        assert!(
            prob.is_finite() && prob > 0.0 && prob <= 1.0,
            "backhop probability must be in (0, 1], got {prob}"
        );
        self.backhop_cells.push(BackhopCell { bank, addr, prob });
        self
    }

    /// Merges `other` into this plan, returning the combination.
    ///
    /// Scalar knobs (`power_cut_every`, `retention_rate_per_ns`,
    /// `read_disturb_prob`) take `other`'s value when it is set. Defect
    /// lists concatenate, except stuck cells where **the later plan wins**
    /// on a (bank, address) conflict — composing a per-lot baseline with a
    /// per-device patch must let the patch re-pin a cell.
    #[must_use]
    pub fn merge(mut self, other: Self) -> Self {
        self.power_cut_every = other.power_cut_every.or(self.power_cut_every);
        self.retention_rate_per_ns = other.retention_rate_per_ns.or(self.retention_rate_per_ns);
        self.read_disturb_prob = other.read_disturb_prob.or(self.read_disturb_prob);
        self.stuck_cells.extend(other.stuck_cells);
        // Later stuck-cell wins: keep only the last entry per (bank, addr),
        // preserving the order in which the surviving entries first settled.
        let mut seen = Vec::new();
        let mut kept = Vec::new();
        for cell in self.stuck_cells.iter().rev() {
            if seen.contains(&(cell.bank, cell.addr)) {
                continue;
            }
            seen.push((cell.bank, cell.addr));
            kept.push(*cell);
        }
        kept.reverse();
        self.stuck_cells = kept;
        self.transition_faults.extend(other.transition_faults);
        self.coupling_faults.extend(other.coupling_faults);
        self.pinhole_cells.extend(other.pinhole_cells);
        self.backhop_cells.extend(other.backhop_cells);
        self
    }

    /// Probability that a cell idle for `idle_ns` nanoseconds of bank busy
    /// time has suffered a retention flip (0 when retention faults are off
    /// or the cell was just touched).
    #[must_use]
    pub fn retention_flip_prob(&self, idle_ns: f64) -> f64 {
        match self.retention_rate_per_ns {
            Some(rate) if idle_ns > 0.0 => -(-rate * idle_ns).exp_m1(),
            _ => 0.0,
        }
    }

    /// `true` when retention or read-disturb injection is active — the bank
    /// only draws from its fault RNG stream in that case, so disabled plans
    /// stay bit-identical to builds that predate these fault models.
    #[must_use]
    pub fn has_soft_errors(&self) -> bool {
        self.retention_rate_per_ns.is_some() || self.read_disturb_prob.is_some()
    }

    /// `true` if the `reads_served`-th read (1-based) on a bank should be
    /// interrupted by a power cut.
    #[must_use]
    pub fn cuts_power_on(&self, reads_served: u64) -> bool {
        match self.power_cut_every {
            Some(every) => reads_served.is_multiple_of(every),
            None => false,
        }
    }

    /// The stuck cells of one bank.
    pub fn stuck_cells_of(&self, bank: usize) -> impl Iterator<Item = &StuckCell> + '_ {
        self.stuck_cells
            .iter()
            .filter(move |cell| cell.bank == bank)
    }

    /// The write transition faults of one bank.
    pub fn transition_faults_of(&self, bank: usize) -> impl Iterator<Item = &TransitionFault> + '_ {
        self.transition_faults
            .iter()
            .filter(move |fault| fault.bank == bank)
    }

    /// The coupling defects of one bank.
    pub fn coupling_faults_of(&self, bank: usize) -> impl Iterator<Item = &CouplingFault> + '_ {
        self.coupling_faults
            .iter()
            .filter(move |fault| fault.bank == bank)
    }

    /// The pinhole defects of one bank.
    pub fn pinhole_cells_of(&self, bank: usize) -> impl Iterator<Item = &PinholeCell> + '_ {
        self.pinhole_cells
            .iter()
            .filter(move |cell| cell.bank == bank)
    }

    /// The backhopping defects of one bank.
    pub fn backhop_cells_of(&self, bank: usize) -> impl Iterator<Item = &BackhopCell> + '_ {
        self.backhop_cells
            .iter()
            .filter(move |cell| cell.bank == bank)
    }
}

/// Coldest die temperature the drift layer will model (K).
pub const DRIFT_T_MIN: f64 = 200.0;

/// Hottest die temperature the drift layer will model (K) — the upper edge
/// of the range [`ThermalModel`]'s coefficients are validated over.
pub const DRIFT_T_MAX: f64 = 500.0;

/// Aging quantisation: the MgO-aging exponent advances in steps of this
/// size, so a bank rebuilds its cells only when the accumulated aging has
/// moved by a full percent — not on every access.
const AGE_EXPONENT_STEP: f64 = 0.01;

/// A piecewise-linear thermal excursion on one bank: the die temperature
/// ramps from ambient up by `amplitude_k`, holds, and falls back — a
/// trapezoid on the bank's **busy clock** (accumulated service time, not
/// wall time), so serial, parallel and event-driven dispatch observe the
/// identical temperature history and stay bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalTransient {
    /// Bank index the hot spot lands on.
    pub bank: usize,
    /// Busy-clock time (ns) the excursion starts.
    pub start_ns: f64,
    /// Rise time (ns) from ambient to the plateau. Zero = step.
    pub ramp_ns: f64,
    /// Plateau duration (ns). `f64::INFINITY` = never cools.
    pub hold_ns: f64,
    /// Fall time (ns) back to ambient. Zero = step.
    pub fall_ns: f64,
    /// Peak temperature rise above ambient (K). Negative = a cold excursion.
    pub amplitude_k: f64,
}

impl ThermalTransient {
    /// Temperature offset above ambient (K) at busy-clock time `busy_ns`.
    #[must_use]
    pub fn offset_at(&self, busy_ns: f64) -> f64 {
        let t = busy_ns - self.start_ns;
        if t < 0.0 {
            return 0.0;
        }
        if t < self.ramp_ns {
            return self.amplitude_k * t / self.ramp_ns;
        }
        let t = t - self.ramp_ns;
        if t < self.hold_ns {
            return self.amplitude_k;
        }
        let t = t - self.hold_ns;
        if t < self.fall_ns {
            return self.amplitude_k * (1.0 - t / self.fall_ns);
        }
        0.0
    }
}

/// Quantised drift state of one bank: the temperature step and aging step
/// its cells were last rebuilt at. Banks compare keys, not raw clocks, so
/// an access only pays for a cell-array rebuild when the drift has moved a
/// full quantum ([`DriftPlan::step_k`] kelvin or one step of aging
/// exponent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriftKey {
    temp_step: i32,
    age_step: i32,
}

impl DriftKey {
    /// The dequantised die temperature this key represents (K).
    #[must_use]
    pub fn temperature_k(&self, step_k: f64) -> f64 {
        (f64::from(self.temp_step) * step_k).clamp(DRIFT_T_MIN, DRIFT_T_MAX)
    }
}

/// Dynamic thermal/aging drift: how each bank's device physics evolves
/// while a trace runs (DESIGN.md §15).
///
/// Two mechanisms, both driven by the bank **busy clock** so replay is
/// deterministic and dispatch-order independent:
///
/// * **Thermal transients** — PWL trapezoid excursions
///   ([`ThermalTransient`]) superimposed on a configurable ambient. The
///   drifted spec follows [`ThermalModel::spec_at`] *plus* an extra
///   high-state roll-off flattening `1/(1 + tc·ΔT)` above the 300 K
///   calibration point: heating degrades the bias roll-off contrast the
///   nondestructive scheme's β was designed against, which is what makes a
///   static β genuinely misread mid-trace.
/// * **MgO aging** — an exponential decay of the high-state roll-off with
///   accumulated busy time, modelling barrier wear-out.
///
/// Rebuilding a bank's cells for a new [`DriftKey`] draws **no RNG**, so
/// enabling drift never perturbs sense or write randomness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftPlan {
    /// Ambient die temperature (K). Default 300 K (the calibration point).
    #[serde(default = "default_ambient_k")]
    pub ambient_k: f64,
    /// Per-bank thermal excursions.
    #[serde(default)]
    pub transients: Vec<ThermalTransient>,
    /// High-state roll-off flattening per kelvin above the 300 K
    /// calibration: `ΔR_Hmax` scales by `1/(1 + tc·ΔT)`.
    #[serde(default = "default_rolloff_tc")]
    pub rolloff_tc_per_k: f64,
    /// MgO aging rate: the high-state roll-off decays as
    /// `exp(−rate · busy_ns)` (`None` = no aging).
    #[serde(default)]
    pub aging_rate_per_ns: Option<f64>,
    /// Temperature quantisation step (K) for [`DriftKey`]s.
    #[serde(default = "default_step_k")]
    pub step_k: f64,
    /// The thermal model mapping temperature to device specs.
    #[serde(default = "ThermalModel::date2010_mgo")]
    pub thermal: ThermalModel,
}

fn default_ambient_k() -> f64 {
    T_REFERENCE
}

fn default_rolloff_tc() -> f64 {
    0.01
}

fn default_step_k() -> f64 {
    2.0
}

impl Default for DriftPlan {
    fn default() -> Self {
        Self::quiet()
    }
}

impl DriftPlan {
    /// No drift: ambient at the 300 K calibration point, no transients, no
    /// aging. A quiet plan is guaranteed to never touch a bank's cells, so
    /// runs stay bit-identical to builds that predate the drift layer.
    #[must_use]
    pub fn quiet() -> Self {
        Self {
            ambient_k: default_ambient_k(),
            transients: Vec::new(),
            rolloff_tc_per_k: default_rolloff_tc(),
            aging_rate_per_ns: None,
            step_k: default_step_k(),
            thermal: ThermalModel::date2010_mgo(),
        }
    }

    /// `true` when this plan can never drift a device: ambient sits exactly
    /// at the calibration temperature, and there are no transients and no
    /// aging. Banks skip all drift bookkeeping for quiet plans.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.ambient_k == T_REFERENCE
            && self.transients.is_empty()
            && self.aging_rate_per_ns.is_none()
    }

    /// Sets the ambient die temperature.
    ///
    /// # Panics
    ///
    /// Panics if `ambient_k` is outside `[DRIFT_T_MIN, DRIFT_T_MAX]`.
    #[must_use]
    pub fn with_ambient(mut self, ambient_k: f64) -> Self {
        assert!(
            (DRIFT_T_MIN..=DRIFT_T_MAX).contains(&ambient_k),
            "ambient temperature must be in [{DRIFT_T_MIN}, {DRIFT_T_MAX}] K, got {ambient_k}"
        );
        self.ambient_k = ambient_k;
        self
    }

    /// Adds a thermal excursion on one bank.
    ///
    /// # Panics
    ///
    /// Panics if any duration is negative, the start is not finite and
    /// non-negative, or the amplitude is not finite.
    #[must_use]
    pub fn with_transient(mut self, transient: ThermalTransient) -> Self {
        assert!(
            transient.start_ns.is_finite() && transient.start_ns >= 0.0,
            "transient start must be finite and non-negative"
        );
        assert!(
            transient.ramp_ns >= 0.0 && transient.hold_ns >= 0.0 && transient.fall_ns >= 0.0,
            "transient durations must be non-negative"
        );
        assert!(
            transient.amplitude_k.is_finite(),
            "transient amplitude must be finite"
        );
        self.transients.push(transient);
        self
    }

    /// Sets the roll-off flattening coefficient (per kelvin above 300 K).
    ///
    /// # Panics
    ///
    /// Panics if `tc` is not finite and non-negative.
    #[must_use]
    pub fn with_rolloff_tc(mut self, tc: f64) -> Self {
        assert!(
            tc.is_finite() && tc >= 0.0,
            "roll-off temperature coefficient must be non-negative, got {tc}"
        );
        self.rolloff_tc_per_k = tc;
        self
    }

    /// Sets the MgO aging rate (roll-off decay per nanosecond of busy time).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not finite and positive.
    #[must_use]
    pub fn with_aging_rate(mut self, rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "aging rate must be positive, got {rate}"
        );
        self.aging_rate_per_ns = Some(rate);
        self
    }

    /// Sets the temperature quantisation step.
    ///
    /// # Panics
    ///
    /// Panics if `step_k` is not finite and positive.
    #[must_use]
    pub fn with_step(mut self, step_k: f64) -> Self {
        assert!(
            step_k.is_finite() && step_k > 0.0,
            "temperature step must be positive, got {step_k}"
        );
        self.step_k = step_k;
        self
    }

    /// The die temperature of `bank` at busy-clock time `busy_ns`, clamped
    /// to the model's validated range.
    #[must_use]
    pub fn temperature_at(&self, bank: usize, busy_ns: f64) -> f64 {
        let offset: f64 = self
            .transients
            .iter()
            .filter(|t| t.bank == bank)
            .map(|t| t.offset_at(busy_ns))
            .sum();
        (self.ambient_k + offset).clamp(DRIFT_T_MIN, DRIFT_T_MAX)
    }

    /// The quantised drift state of `bank` at busy-clock time `busy_ns`.
    #[must_use]
    pub fn key_at(&self, bank: usize, busy_ns: f64) -> DriftKey {
        let temp = self.temperature_at(bank, busy_ns);
        #[allow(clippy::cast_possible_truncation)]
        let temp_step = (temp / self.step_k).round() as i32;
        let exponent = self.aging_rate_per_ns.map_or(0.0, |rate| rate * busy_ns);
        #[allow(clippy::cast_possible_truncation)]
        let age_step = (exponent / AGE_EXPONENT_STEP).floor() as i32;
        DriftKey {
            temp_step,
            age_step,
        }
    }

    /// The drifted device spec at drift state `key`, derived from the
    /// undrifted `reference` spec: [`ThermalModel::spec_at`] at the key's
    /// temperature, with the high-state roll-off additionally flattened by
    /// heating (`1/(1 + tc·ΔT)` above 300 K) and aging
    /// (`exp(−age exponent)`). The combined flattening is floored at 5 % so
    /// the spec stays physical.
    #[must_use]
    pub fn drifted_spec(&self, reference: &MtjSpec, key: DriftKey) -> MtjSpec {
        let t = key.temperature_k(self.step_k);
        let spec = self.thermal.spec_at(reference, t);
        let heating = 1.0 / (1.0 + self.rolloff_tc_per_k * (t - T_REFERENCE).max(0.0));
        let aging = (-f64::from(key.age_step) * AGE_EXPONENT_STEP).exp();
        let factor = (heating * aging).clamp(0.05, 1.0);
        let r = &spec.resistance;
        MtjSpec {
            resistance: LinearRolloff::new(
                r.r_low0(),
                r.r_high0(),
                r.dr_low_max(),
                r.dr_high_max() * factor,
                r.i_max(),
            ),
            switching: spec.switching,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_quiet() {
        let plan = FaultPlan::none();
        assert!(!plan.cuts_power_on(1));
        assert!(!plan.cuts_power_on(1000));
        assert_eq!(plan.stuck_cells_of(0).count(), 0);
    }

    #[test]
    fn power_cut_cadence() {
        let plan = FaultPlan::none().with_power_cut_every(100);
        assert!(!plan.cuts_power_on(1));
        assert!(!plan.cuts_power_on(99));
        assert!(plan.cuts_power_on(100));
        assert!(plan.cuts_power_on(200));
    }

    #[test]
    fn retention_probability_follows_the_exponential_hazard() {
        let plan = FaultPlan::none().with_retention_rate(1e-3);
        assert_eq!(plan.retention_flip_prob(0.0), 0.0);
        let p = plan.retention_flip_prob(1000.0);
        assert!((p - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        assert!(plan.retention_flip_prob(1e9) > 0.999_999);
        assert_eq!(FaultPlan::none().retention_flip_prob(1e9), 0.0);
    }

    #[test]
    fn soft_error_flag_tracks_the_two_models() {
        assert!(!FaultPlan::none().has_soft_errors());
        assert!(FaultPlan::none()
            .with_retention_rate(1e-6)
            .has_soft_errors());
        assert!(FaultPlan::none().with_read_disturb(0.01).has_soft_errors());
        assert!(!FaultPlan::none().with_power_cut_every(5).has_soft_errors());
    }

    #[test]
    #[should_panic(expected = "read-disturb probability")]
    fn read_disturb_must_be_a_probability() {
        let _ = FaultPlan::none().with_read_disturb(1.5);
    }

    #[test]
    fn stuck_cells_filter_by_bank() {
        let plan = FaultPlan::none()
            .with_stuck_cell(0, Address::new(1, 1), true)
            .with_stuck_cell(2, Address::new(3, 3), false)
            .with_stuck_cell(0, Address::new(5, 5), false);
        assert_eq!(plan.stuck_cells_of(0).count(), 2);
        assert_eq!(plan.stuck_cells_of(1).count(), 0);
        assert_eq!(plan.stuck_cells_of(2).count(), 1);
    }

    #[test]
    fn defect_library_filters_by_bank() {
        let plan = FaultPlan::none()
            .with_transition_fault(0, Address::new(1, 2), true)
            .with_transition_fault(1, Address::new(1, 2), false)
            .with_coupling_fault(
                0,
                3,
                5,
                6,
                CouplingKind::State {
                    aggressor_value: true,
                    victim_value: false,
                },
            )
            .with_pinhole(1, Address::new(4, 4))
            .with_backhop(0, Address::new(7, 7), 0.5);
        assert_eq!(plan.transition_faults_of(0).count(), 1);
        assert_eq!(plan.transition_faults_of(1).count(), 1);
        assert_eq!(plan.coupling_faults_of(0).count(), 1);
        assert_eq!(plan.coupling_faults_of(1).count(), 0);
        assert_eq!(plan.pinhole_cells_of(1).count(), 1);
        assert_eq!(plan.backhop_cells_of(0).count(), 1);
        assert!(plan.transition_faults_of(0).next().unwrap().rising);
    }

    #[test]
    #[should_panic(expected = "couple to itself")]
    fn coupling_rejects_self_coupling() {
        let _ = FaultPlan::none().with_coupling_fault(
            0,
            0,
            3,
            3,
            CouplingKind::Disturb { victim_value: true },
        );
    }

    #[test]
    #[should_panic(expected = "backhop probability")]
    fn backhop_rejects_bad_probability() {
        let _ = FaultPlan::none().with_backhop(0, Address::new(0, 0), 0.0);
    }

    #[test]
    fn merge_later_stuck_cell_wins() {
        let base = FaultPlan::none()
            .with_stuck_cell(0, Address::new(1, 1), true)
            .with_stuck_cell(0, Address::new(2, 2), true)
            .with_power_cut_every(100);
        let patch = FaultPlan::none()
            .with_stuck_cell(0, Address::new(1, 1), false)
            .with_stuck_cell(1, Address::new(1, 1), true)
            .with_retention_rate(1e-6);
        let merged = base.merge(patch);
        assert_eq!(merged.stuck_cells.len(), 3);
        let repinned = merged
            .stuck_cells_of(0)
            .find(|c| c.addr == Address::new(1, 1))
            .expect("cell survives the merge");
        assert!(!repinned.value, "the later plan re-pins the cell to 0");
        assert_eq!(merged.power_cut_every, Some(100));
        assert_eq!(merged.retention_rate_per_ns, Some(1e-6));
    }

    #[test]
    fn merge_concatenates_defect_lists_and_prefers_later_scalars() {
        let base = FaultPlan::none()
            .with_power_cut_every(50)
            .with_transition_fault(0, Address::new(0, 0), true);
        let patch = FaultPlan::none()
            .with_power_cut_every(75)
            .with_transition_fault(0, Address::new(0, 1), false)
            .with_pinhole(0, Address::new(2, 2))
            .with_backhop(0, Address::new(3, 3), 0.25);
        let merged = base.merge(patch);
        assert_eq!(merged.power_cut_every, Some(75), "later scalar wins");
        assert_eq!(merged.transition_faults.len(), 2);
        assert_eq!(merged.pinhole_cells.len(), 1);
        assert_eq!(merged.backhop_cells.len(), 1);
        // Merging a quiet plan changes nothing.
        let merged_again = merged.clone().merge(FaultPlan::none());
        assert_eq!(merged_again, merged);
    }

    #[test]
    fn retention_probability_edge_cases_stay_in_unit_interval() {
        // rate = 0 (constructed directly — the builder rejects it as a
        // degenerate knob) must behave like "no retention faults".
        let zero_rate = FaultPlan {
            retention_rate_per_ns: Some(0.0),
            ..FaultPlan::none()
        };
        assert_eq!(zero_rate.retention_flip_prob(1e12), 0.0);
        let plan = FaultPlan::none().with_retention_rate(1e-6);
        assert_eq!(plan.retention_flip_prob(0.0), 0.0);
        assert_eq!(
            plan.retention_flip_prob(-1.0),
            0.0,
            "negative idle is no idle"
        );
        assert_eq!(plan.retention_flip_prob(f64::INFINITY), 1.0);
        assert!(plan.retention_flip_prob(1e300) <= 1.0);
    }

    mod drift {
        use super::*;

        fn hotspot(amplitude_k: f64) -> ThermalTransient {
            ThermalTransient {
                bank: 0,
                start_ns: 1000.0,
                ramp_ns: 500.0,
                hold_ns: 2000.0,
                fall_ns: 500.0,
                amplitude_k,
            }
        }

        #[test]
        fn quiet_plan_is_the_default_and_detects_itself() {
            assert_eq!(DriftPlan::default(), DriftPlan::quiet());
            assert!(DriftPlan::quiet().is_quiet());
            assert!(!DriftPlan::quiet().with_ambient(320.0).is_quiet());
            assert!(!DriftPlan::quiet().with_transient(hotspot(100.0)).is_quiet());
            assert!(!DriftPlan::quiet().with_aging_rate(1e-6).is_quiet());
        }

        #[test]
        fn transient_traces_the_trapezoid() {
            let t = hotspot(100.0);
            assert_eq!(t.offset_at(0.0), 0.0);
            assert_eq!(t.offset_at(999.9), 0.0);
            assert!((t.offset_at(1250.0) - 50.0).abs() < 1e-9, "mid-ramp");
            assert_eq!(t.offset_at(1500.0), 100.0, "plateau start");
            assert_eq!(t.offset_at(3000.0), 100.0, "plateau");
            assert!((t.offset_at(3750.0) - 50.0).abs() < 1e-9, "mid-fall");
            assert_eq!(t.offset_at(4000.0), 0.0, "cooled");
            assert_eq!(t.offset_at(1e12), 0.0);
        }

        #[test]
        fn zero_duration_segments_behave_as_steps() {
            let step = ThermalTransient {
                bank: 0,
                start_ns: 100.0,
                ramp_ns: 0.0,
                hold_ns: 50.0,
                fall_ns: 0.0,
                amplitude_k: 80.0,
            };
            assert_eq!(step.offset_at(99.9), 0.0);
            assert_eq!(step.offset_at(100.0), 80.0);
            assert_eq!(step.offset_at(149.9), 80.0);
            assert_eq!(step.offset_at(150.0), 0.0);
        }

        #[test]
        fn temperature_sums_per_bank_and_clamps() {
            let plan = DriftPlan::quiet()
                .with_transient(hotspot(100.0))
                .with_transient(ThermalTransient {
                    bank: 1,
                    ..hotspot(50.0)
                })
                .with_transient(ThermalTransient {
                    start_ns: 2000.0,
                    ..hotspot(400.0)
                });
            assert_eq!(plan.temperature_at(0, 0.0), 300.0);
            assert_eq!(plan.temperature_at(0, 2000.0), 400.0, "first plateau only");
            assert_eq!(
                plan.temperature_at(0, 3000.0),
                DRIFT_T_MAX,
                "stacked transients clamp at the model ceiling"
            );
            assert_eq!(plan.temperature_at(1, 2000.0), 350.0);
            assert_eq!(plan.temperature_at(2, 2000.0), 300.0, "unaffected bank");
        }

        #[test]
        fn keys_quantise_temperature_and_aging() {
            let plan = DriftPlan::quiet().with_transient(hotspot(100.0));
            let cold = plan.key_at(0, 0.0);
            assert_eq!(cold, plan.key_at(0, 500.0), "pre-transient keys agree");
            // Half a quantum of temperature movement does not change the key.
            assert_eq!(plan.key_at(0, 1000.0), plan.key_at(0, 1004.0));
            assert_ne!(cold, plan.key_at(0, 2000.0), "plateau is a new key");
            assert_eq!(cold, plan.key_at(1, 2000.0), "other banks unaffected");

            let aging = DriftPlan::quiet().with_aging_rate(1e-5);
            assert_eq!(aging.key_at(0, 0.0), aging.key_at(0, 999.0));
            assert_ne!(aging.key_at(0, 0.0), aging.key_at(0, 1001.0));
        }

        #[test]
        fn drifted_spec_flattens_the_high_rolloff() {
            use stt_mtj::MtjSpec;
            let reference = MtjSpec::date2010_typical();
            let plan = DriftPlan::quiet().with_transient(hotspot(150.0));
            let cold = plan.drifted_spec(&reference, plan.key_at(0, 0.0));
            let hot = plan.drifted_spec(&reference, plan.key_at(0, 2000.0));
            // Heating collapses TMR (spec_at) *and* flattens the roll-off
            // beyond the proportional spec_at scaling.
            assert!(hot.resistance.r_high0() < cold.resistance.r_high0());
            let spec_at_only = plan.thermal.spec_at(&reference, 450.0);
            assert!(
                hot.resistance.dr_high_max().get()
                    < 0.5 * spec_at_only.resistance.dr_high_max().get(),
                "tc = 0.01/K at ΔT = 150 K flattens by > 2×"
            );
            // Low-state roll-off follows spec_at alone.
            assert!(
                (hot.resistance.dr_low_max() - spec_at_only.resistance.dr_low_max())
                    .abs()
                    .get()
                    < 1e-9
            );
        }

        #[test]
        fn aging_decays_the_rolloff_monotonically() {
            use stt_mtj::MtjSpec;
            let reference = MtjSpec::date2010_typical();
            let plan = DriftPlan::quiet().with_aging_rate(1e-5);
            let fresh = plan.drifted_spec(&reference, plan.key_at(0, 0.0));
            let worn = plan.drifted_spec(&reference, plan.key_at(0, 5e4));
            let dead = plan.drifted_spec(&reference, plan.key_at(0, 1e9));
            assert!(worn.resistance.dr_high_max() < fresh.resistance.dr_high_max());
            assert!(
                (dead.resistance.dr_high_max().get() - 0.05 * fresh.resistance.dr_high_max().get())
                    .abs()
                    < 1e-9,
                "flattening floors at 5 %"
            );
        }

        #[test]
        #[should_panic(expected = "durations must be non-negative")]
        fn transient_rejects_negative_durations() {
            let _ = DriftPlan::quiet().with_transient(ThermalTransient {
                ramp_ns: -1.0,
                ..hotspot(10.0)
            });
        }

        #[test]
        #[should_panic(expected = "ambient temperature")]
        fn ambient_must_stay_in_model_range() {
            let _ = DriftPlan::quiet().with_ambient(600.0);
        }
    }

    mod retention_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_retention_flip_prob_is_a_probability(
                rate in 1e-12f64..1.0,
                idle_ns in 0.0..1e30f64,
            ) {
                let plan = FaultPlan::none().with_retention_rate(rate);
                let p = plan.retention_flip_prob(idle_ns);
                prop_assert!((0.0..=1.0).contains(&p), "p = {p}");
                // More idle time never lowers the flip probability.
                let p_half = plan.retention_flip_prob(idle_ns / 2.0);
                prop_assert!(p_half <= p);
            }
        }
    }
}
