//! Fault injection at the controller level.
//!
//! Two fault families, both reusing the array crate's machinery:
//!
//! * **Power cuts** — every Nth read on a bank is interrupted mid-sequence
//!   via [`stt_array::run_with_power_failure`]. For the destructive scheme
//!   the cut lands in the §I vulnerability window (after the erase, before
//!   the write-back), so stored data is physically lost; conventional and
//!   nondestructive reads have no state-mutating steps and shrug the cut
//!   off. This is the paper's core reliability argument, driven by traffic
//!   instead of a standalone experiment.
//! * **Stuck cells** — manufacturing defects pinned to one state. Writes to
//!   a stuck cell appear to succeed but the cell snaps back, so reads
//!   return the stuck value — the misreads an ECC/map-out layer would have
//!   to absorb.
//!
//! Two more families come from the STT-MRAM testing literature (Wu et al.,
//! 2020 survey), both drawn on a **dedicated per-bank fault RNG stream** so
//! enabling them never perturbs sense or write randomness:
//!
//! * **Retention failures** — thermally-activated bit flips while a cell
//!   sits idle. Modelled as a per-cell exponential hazard over the bank's
//!   accumulated *busy time* (not wall time, so serial, parallel and
//!   event-driven dispatch stay bit-identical): when an access touches a
//!   cell that has been idle for `dt` ns, it first flips with probability
//!   `1 − exp(−rate·dt)`.
//! * **Read disturb** — the read current of every sensed cell nudges its own
//!   free layer; each cell of a read word flips with a fixed probability per
//!   read. Unlike retention this only hits words traffic actually touches.

use serde::{Deserialize, Serialize};
use stt_array::Address;

/// A stuck-at defect on one cell of one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StuckCell {
    /// Bank index.
    pub bank: usize,
    /// Cell address within the bank.
    pub addr: Address,
    /// The value the cell is pinned to.
    pub value: bool,
}

/// What to inject while serving a trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Cut power mid-sequence on every Nth read of each bank
    /// (`None` = never). The count is per bank, so the plan is independent
    /// of how transactions interleave across banks.
    pub power_cut_every: Option<u64>,
    /// Manufacturing defects.
    pub stuck_cells: Vec<StuckCell>,
    /// Retention-failure hazard rate per cell, per nanosecond of bank busy
    /// time (`None` = perfect retention). Real rates are astronomically
    /// small; campaign values are accelerated so failures appear within a
    /// trace, like a bake test.
    #[serde(default)]
    pub retention_rate_per_ns: Option<f64>,
    /// Probability that one read flips each sensed cell of the victim word
    /// (`None` = no read disturb).
    #[serde(default)]
    pub read_disturb_prob: Option<f64>,
}

impl FaultPlan {
    /// No faults.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Cut power on every `every`-th read per bank.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    #[must_use]
    pub fn with_power_cut_every(mut self, every: u64) -> Self {
        assert!(every > 0, "power-cut cadence must be at least 1");
        self.power_cut_every = Some(every);
        self
    }

    /// Adds a stuck-at defect.
    #[must_use]
    pub fn with_stuck_cell(mut self, bank: usize, addr: Address, value: bool) -> Self {
        self.stuck_cells.push(StuckCell { bank, addr, value });
        self
    }

    /// Sets the retention-failure hazard rate (flips per cell per
    /// nanosecond of bank busy time).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not finite and positive.
    #[must_use]
    pub fn with_retention_rate(mut self, rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "retention rate must be positive, got {rate}"
        );
        self.retention_rate_per_ns = Some(rate);
        self
    }

    /// Sets the per-read, per-cell read-disturb flip probability.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is not in `(0, 1]`.
    #[must_use]
    pub fn with_read_disturb(mut self, prob: f64) -> Self {
        assert!(
            prob.is_finite() && prob > 0.0 && prob <= 1.0,
            "read-disturb probability must be in (0, 1], got {prob}"
        );
        self.read_disturb_prob = Some(prob);
        self
    }

    /// Probability that a cell idle for `idle_ns` nanoseconds of bank busy
    /// time has suffered a retention flip (0 when retention faults are off
    /// or the cell was just touched).
    #[must_use]
    pub fn retention_flip_prob(&self, idle_ns: f64) -> f64 {
        match self.retention_rate_per_ns {
            Some(rate) if idle_ns > 0.0 => -(-rate * idle_ns).exp_m1(),
            _ => 0.0,
        }
    }

    /// `true` when retention or read-disturb injection is active — the bank
    /// only draws from its fault RNG stream in that case, so disabled plans
    /// stay bit-identical to builds that predate these fault models.
    #[must_use]
    pub fn has_soft_errors(&self) -> bool {
        self.retention_rate_per_ns.is_some() || self.read_disturb_prob.is_some()
    }

    /// `true` if the `reads_served`-th read (1-based) on a bank should be
    /// interrupted by a power cut.
    #[must_use]
    pub fn cuts_power_on(&self, reads_served: u64) -> bool {
        match self.power_cut_every {
            Some(every) => reads_served.is_multiple_of(every),
            None => false,
        }
    }

    /// The stuck cells of one bank.
    pub fn stuck_cells_of(&self, bank: usize) -> impl Iterator<Item = &StuckCell> + '_ {
        self.stuck_cells
            .iter()
            .filter(move |cell| cell.bank == bank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_quiet() {
        let plan = FaultPlan::none();
        assert!(!plan.cuts_power_on(1));
        assert!(!plan.cuts_power_on(1000));
        assert_eq!(plan.stuck_cells_of(0).count(), 0);
    }

    #[test]
    fn power_cut_cadence() {
        let plan = FaultPlan::none().with_power_cut_every(100);
        assert!(!plan.cuts_power_on(1));
        assert!(!plan.cuts_power_on(99));
        assert!(plan.cuts_power_on(100));
        assert!(plan.cuts_power_on(200));
    }

    #[test]
    fn retention_probability_follows_the_exponential_hazard() {
        let plan = FaultPlan::none().with_retention_rate(1e-3);
        assert_eq!(plan.retention_flip_prob(0.0), 0.0);
        let p = plan.retention_flip_prob(1000.0);
        assert!((p - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        assert!(plan.retention_flip_prob(1e9) > 0.999_999);
        assert_eq!(FaultPlan::none().retention_flip_prob(1e9), 0.0);
    }

    #[test]
    fn soft_error_flag_tracks_the_two_models() {
        assert!(!FaultPlan::none().has_soft_errors());
        assert!(FaultPlan::none()
            .with_retention_rate(1e-6)
            .has_soft_errors());
        assert!(FaultPlan::none().with_read_disturb(0.01).has_soft_errors());
        assert!(!FaultPlan::none().with_power_cut_every(5).has_soft_errors());
    }

    #[test]
    #[should_panic(expected = "read-disturb probability")]
    fn read_disturb_must_be_a_probability() {
        let _ = FaultPlan::none().with_read_disturb(1.5);
    }

    #[test]
    fn stuck_cells_filter_by_bank() {
        let plan = FaultPlan::none()
            .with_stuck_cell(0, Address::new(1, 1), true)
            .with_stuck_cell(2, Address::new(3, 3), false)
            .with_stuck_cell(0, Address::new(5, 5), false);
        assert_eq!(plan.stuck_cells_of(0).count(), 2);
        assert_eq!(plan.stuck_cells_of(1).count(), 0);
        assert_eq!(plan.stuck_cells_of(2).count(), 1);
    }
}
