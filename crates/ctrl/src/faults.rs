//! Fault injection at the controller level.
//!
//! Two fault families, both reusing the array crate's machinery:
//!
//! * **Power cuts** — every Nth read on a bank is interrupted mid-sequence
//!   via [`stt_array::run_with_power_failure`]. For the destructive scheme
//!   the cut lands in the §I vulnerability window (after the erase, before
//!   the write-back), so stored data is physically lost; conventional and
//!   nondestructive reads have no state-mutating steps and shrug the cut
//!   off. This is the paper's core reliability argument, driven by traffic
//!   instead of a standalone experiment.
//! * **Stuck cells** — manufacturing defects pinned to one state. Writes to
//!   a stuck cell appear to succeed but the cell snaps back, so reads
//!   return the stuck value — the misreads an ECC/map-out layer would have
//!   to absorb.

use serde::{Deserialize, Serialize};
use stt_array::Address;

/// A stuck-at defect on one cell of one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StuckCell {
    /// Bank index.
    pub bank: usize,
    /// Cell address within the bank.
    pub addr: Address,
    /// The value the cell is pinned to.
    pub value: bool,
}

/// What to inject while serving a trace.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Cut power mid-sequence on every Nth read of each bank
    /// (`None` = never). The count is per bank, so the plan is independent
    /// of how transactions interleave across banks.
    pub power_cut_every: Option<u64>,
    /// Manufacturing defects.
    pub stuck_cells: Vec<StuckCell>,
}

impl FaultPlan {
    /// No faults.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Cut power on every `every`-th read per bank.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    #[must_use]
    pub fn with_power_cut_every(mut self, every: u64) -> Self {
        assert!(every > 0, "power-cut cadence must be at least 1");
        self.power_cut_every = Some(every);
        self
    }

    /// Adds a stuck-at defect.
    #[must_use]
    pub fn with_stuck_cell(mut self, bank: usize, addr: Address, value: bool) -> Self {
        self.stuck_cells.push(StuckCell { bank, addr, value });
        self
    }

    /// `true` if the `reads_served`-th read (1-based) on a bank should be
    /// interrupted by a power cut.
    #[must_use]
    pub fn cuts_power_on(&self, reads_served: u64) -> bool {
        match self.power_cut_every {
            Some(every) => reads_served.is_multiple_of(every),
            None => false,
        }
    }

    /// The stuck cells of one bank.
    pub fn stuck_cells_of(&self, bank: usize) -> impl Iterator<Item = &StuckCell> + '_ {
        self.stuck_cells
            .iter()
            .filter(move |cell| cell.bank == bank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_quiet() {
        let plan = FaultPlan::none();
        assert!(!plan.cuts_power_on(1));
        assert!(!plan.cuts_power_on(1000));
        assert_eq!(plan.stuck_cells_of(0).count(), 0);
    }

    #[test]
    fn power_cut_cadence() {
        let plan = FaultPlan::none().with_power_cut_every(100);
        assert!(!plan.cuts_power_on(1));
        assert!(!plan.cuts_power_on(99));
        assert!(plan.cuts_power_on(100));
        assert!(plan.cuts_power_on(200));
    }

    #[test]
    fn stuck_cells_filter_by_bank() {
        let plan = FaultPlan::none()
            .with_stuck_cell(0, Address::new(1, 1), true)
            .with_stuck_cell(2, Address::new(3, 3), false)
            .with_stuck_cell(0, Address::new(5, 5), false);
        assert_eq!(plan.stuck_cells_of(0).count(), 2);
        assert_eq!(plan.stuck_cells_of(1).count(), 0);
        assert_eq!(plan.stuck_cells_of(2).count(), 1);
    }
}
