//! Synthetic traffic generators.
//!
//! Three classic access patterns, each parameterised by a read fraction and
//! generated deterministically from a seed:
//!
//! * [`Workload::Uniform`] — every cell equally likely; the stress case for
//!   bit-to-bit variation because every read lands on a *different* device.
//! * [`Workload::Zipf`] — a hot-set pattern (rank-`k` cell visited with
//!   probability ∝ `1/k^theta`), the shape of metadata and key-value
//!   traffic on the handheld devices the paper's introduction targets.
//! * [`Workload::ReadMostly`] — 95 % reads over a uniform footprint, the
//!   regime where read latency/energy (the paper's Table III axis)
//!   dominates the traffic cost.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use stt_array::Address;

use crate::hierarchy::{Geometry, Interleave, InterleavePolicy};
use crate::txn::{Trace, Transaction};

/// Cap on the Zipf rank table used by [`Workload::generate_physical`]. The
/// flat-footprint generator precomputes one cumulative weight per cell,
/// which is fine for a handful of 16 kb banks but impossible for a chip
/// whose addressable space is multi-GB (the whole point of lazy bank
/// materialisation). Capping the table keeps generation O(min(cells, 64k));
/// ranks are then spread over the full space by a fixed stride, so the hot
/// set still exercises every level of the hierarchy.
const MAX_ZIPF_RANKS: usize = 1 << 16;

/// The shape of the address space a workload targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Footprint {
    /// Number of banks.
    pub banks: usize,
    /// Rows per bank.
    pub rows: usize,
    /// Columns per bank.
    pub cols: usize,
}

impl Footprint {
    /// Total cells across all banks.
    #[must_use]
    pub fn cells(&self) -> usize {
        self.banks * self.rows * self.cols
    }

    /// Maps a flat cell index to `(bank, addr)`, bank-major.
    #[must_use]
    fn locate(&self, index: usize) -> (usize, Address) {
        let per_bank = self.rows * self.cols;
        let bank = index / per_bank;
        let offset = index % per_bank;
        (bank, Address::new(offset / self.cols, offset % self.cols))
    }
}

/// A synthetic traffic pattern.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Workload {
    /// Uniformly random cells, `read_fraction` of transactions are reads.
    Uniform {
        /// Fraction of transactions that are reads (`0.0..=1.0`).
        read_fraction: f64,
    },
    /// Zipf-distributed cell popularity with exponent `theta`.
    Zipf {
        /// Skew exponent; `0.0` degenerates to uniform, `~1.0` is the
        /// classic heavy-hitter web/metadata shape.
        theta: f64,
        /// Fraction of transactions that are reads (`0.0..=1.0`).
        read_fraction: f64,
    },
    /// 95 % reads over a uniform footprint.
    ReadMostly,
}

impl Workload {
    /// The three patterns swept by the traffic harness.
    pub const ALL: [Workload; 3] = [
        Workload::Uniform { read_fraction: 0.5 },
        Workload::Zipf {
            theta: 0.99,
            read_fraction: 0.8,
        },
        Workload::ReadMostly,
    ];

    /// Short machine-readable name for table/CSV rows.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Uniform { .. } => "uniform",
            Workload::Zipf { .. } => "zipf",
            Workload::ReadMostly => "read-mostly",
        }
    }

    /// The workload's read fraction.
    #[must_use]
    pub fn read_fraction(&self) -> f64 {
        match self {
            Workload::Uniform { read_fraction } | Workload::Zipf { read_fraction, .. } => {
                *read_fraction
            }
            Workload::ReadMostly => 0.95,
        }
    }

    /// Generates `count` transactions over `footprint`, deterministically
    /// under the caller's RNG.
    ///
    /// # Panics
    ///
    /// Panics if the footprint is empty or the read fraction is outside
    /// `0.0..=1.0`.
    pub fn generate(&self, footprint: Footprint, count: usize, rng: &mut StdRng) -> Trace {
        assert!(
            footprint.cells() > 0,
            "workload needs a non-empty footprint"
        );
        let read_fraction = self.read_fraction();
        assert!(
            (0.0..=1.0).contains(&read_fraction),
            "read fraction {read_fraction} outside [0, 1]"
        );
        let picker = CellPicker::new(self, footprint.cells());
        let mut trace = Trace::new();
        for _ in 0..count {
            let (bank, addr) = footprint.locate(picker.pick(rng));
            let txn = if rng.gen_bool(read_fraction) {
                Transaction::read(bank, addr)
            } else {
                Transaction::write(bank, addr, rng.gen_bool(0.5))
            };
            trace.push(txn);
        }
        trace
    }

    /// Generates `count` transactions over a full-chip [`Geometry`]: the
    /// workload draws *linear host addresses* under its popularity law and
    /// `interleave` maps each onto a physical `(bank, cell)`, so the same
    /// traffic stream lands differently under different interleaving
    /// policies — which is exactly the comparison the topology sweep makes.
    /// Transactions carry **global bank indices**
    /// ([`Topology::flatten`](crate::hierarchy::Topology::flatten)), ready
    /// for [`Chip::run_trace`](crate::hierarchy::Chip::run_trace).
    ///
    /// Zipf workloads sample a rank table capped at 64 k entries (strided
    /// over the full space), so generation stays cheap even when the
    /// geometry addresses gigabits.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is empty or the read fraction is outside
    /// `0.0..=1.0`.
    pub fn generate_physical(
        &self,
        geometry: &Geometry,
        interleave: InterleavePolicy,
        count: usize,
        rng: &mut StdRng,
    ) -> Trace {
        let cells = geometry.cells();
        assert!(cells > 0, "workload needs a non-empty geometry");
        let read_fraction = self.read_fraction();
        assert!(
            (0.0..=1.0).contains(&read_fraction),
            "read fraction {read_fraction} outside [0, 1]"
        );
        let (sampled, scale) = match self {
            Workload::Zipf { .. } => {
                let capped = cells.min(MAX_ZIPF_RANKS);
                (capped, cells / capped)
            }
            Workload::Uniform { .. } | Workload::ReadMostly => (cells, 1),
        };
        let picker = CellPicker::new(self, sampled);
        let mut trace = Trace::new();
        for _ in 0..count {
            let linear = picker.pick(rng) * scale;
            let phys = interleave.decode(geometry, linear);
            let bank = geometry.topology.flatten(phys.coord);
            let txn = if rng.gen_bool(read_fraction) {
                Transaction::read(bank, phys.addr)
            } else {
                Transaction::write(bank, phys.addr, rng.gen_bool(0.5))
            };
            trace.push(txn);
        }
        trace
    }
}

/// Samples flat cell indices under a workload's popularity law.
enum CellPicker {
    Uniform {
        cells: usize,
    },
    /// Inverse-CDF sampling over precomputed cumulative Zipf weights;
    /// rank `k` (0-based) carries weight `1/(k+1)^theta`. Ranks are mapped
    /// to cells by a fixed stride so the hot set spreads across banks
    /// instead of piling into bank 0.
    Zipf {
        cumulative: Vec<f64>,
        stride: usize,
        cells: usize,
    },
}

impl CellPicker {
    fn new(workload: &Workload, cells: usize) -> Self {
        match *workload {
            Workload::Uniform { .. } | Workload::ReadMostly => CellPicker::Uniform { cells },
            Workload::Zipf { theta, .. } => {
                let mut cumulative = Vec::with_capacity(cells);
                let mut total = 0.0;
                for rank in 0..cells {
                    total += 1.0 / ((rank + 1) as f64).powf(theta);
                    cumulative.push(total);
                }
                // A stride coprime with the cell count scatters ranks over
                // the flat index space (and thus over banks).
                let mut stride = (cells / 3) | 1;
                while gcd(stride, cells) != 1 {
                    stride += 2;
                }
                CellPicker::Zipf {
                    cumulative,
                    stride,
                    cells,
                }
            }
        }
    }

    fn pick(&self, rng: &mut StdRng) -> usize {
        match self {
            CellPicker::Uniform { cells } => rng.gen_range(0..*cells),
            CellPicker::Zipf {
                cumulative,
                stride,
                cells,
            } => {
                let total = *cumulative.last().expect("non-empty footprint");
                let target = rng.gen::<f64>() * total;
                let rank = cumulative.partition_point(|&c| c < target).min(cells - 1);
                (rank * stride) % cells
            }
        }
    }
}

fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    const FOOTPRINT: Footprint = Footprint {
        banks: 4,
        rows: 8,
        cols: 8,
    };

    #[test]
    fn generation_is_deterministic() {
        for workload in Workload::ALL {
            let a = workload.generate(FOOTPRINT, 500, &mut StdRng::seed_from_u64(7));
            let b = workload.generate(FOOTPRINT, 500, &mut StdRng::seed_from_u64(7));
            assert_eq!(a, b, "{}", workload.name());
        }
    }

    #[test]
    fn read_fractions_are_respected() {
        for workload in Workload::ALL {
            let trace = workload.generate(FOOTPRINT, 4000, &mut StdRng::seed_from_u64(3));
            let observed = trace.reads() as f64 / trace.len() as f64;
            let expected = workload.read_fraction();
            assert!(
                (observed - expected).abs() < 0.05,
                "{}: observed read fraction {observed}, expected {expected}",
                workload.name()
            );
        }
    }

    #[test]
    fn addresses_stay_in_range() {
        for workload in Workload::ALL {
            let trace = workload.generate(FOOTPRINT, 2000, &mut StdRng::seed_from_u64(11));
            for txn in trace.transactions() {
                assert!(txn.bank < FOOTPRINT.banks);
                assert!(txn.addr.row < FOOTPRINT.rows);
                assert!(txn.addr.col < FOOTPRINT.cols);
            }
        }
    }

    #[test]
    fn zipf_concentrates_traffic() {
        let zipf = Workload::Zipf {
            theta: 1.2,
            read_fraction: 1.0,
        };
        let uniform = Workload::Uniform { read_fraction: 1.0 };
        let count_distinct = |workload: &Workload| {
            let trace = workload.generate(FOOTPRINT, 2000, &mut StdRng::seed_from_u64(5));
            let mut seen = std::collections::HashSet::new();
            for txn in trace.transactions() {
                seen.insert((txn.bank, txn.addr.row, txn.addr.col));
            }
            seen.len()
        };
        assert!(
            count_distinct(&zipf) < count_distinct(&uniform),
            "a skewed law must touch fewer distinct cells"
        );
    }

    #[test]
    fn physical_generation_is_deterministic_and_in_range() {
        use crate::hierarchy::Topology;
        let geometry = Geometry::new(Topology::new(2, 1, 2, 2), 8, 8);
        for workload in Workload::ALL {
            for policy in InterleavePolicy::ALL {
                let make = || {
                    workload.generate_physical(
                        &geometry,
                        policy,
                        500,
                        &mut StdRng::seed_from_u64(13),
                    )
                };
                let trace = make();
                assert_eq!(trace, make(), "{} / {}", workload.name(), policy.name());
                for txn in trace.transactions() {
                    assert!(txn.bank < geometry.topology.total_banks());
                    assert!(txn.addr.row < geometry.rows && txn.addr.col < geometry.cols);
                }
            }
        }
    }

    #[test]
    fn physical_zipf_caps_its_rank_table_over_huge_geometries() {
        use crate::hierarchy::Topology;
        // 8 Gb addressable; an uncapped cumulative table would OOM.
        let geometry = Geometry::new(Topology::new(4, 2, 4, 8), 4096, 8192);
        let zipf = Workload::Zipf {
            theta: 0.99,
            read_fraction: 1.0,
        };
        let trace = zipf.generate_physical(
            &geometry,
            InterleavePolicy::ChannelStriped,
            200,
            &mut StdRng::seed_from_u64(3),
        );
        assert_eq!(trace.len(), 200);
        let mut banks = std::collections::HashSet::new();
        for txn in trace.transactions() {
            assert!(txn.bank < geometry.topology.total_banks());
            banks.insert(txn.bank);
        }
        assert!(
            banks.len() < geometry.topology.total_banks(),
            "a hot set should not need every one of {} banks",
            geometry.topology.total_banks()
        );
    }

    #[test]
    fn zipf_traffic_reaches_every_bank() {
        let zipf = Workload::Zipf {
            theta: 0.99,
            read_fraction: 1.0,
        };
        let trace = zipf.generate(FOOTPRINT, 2000, &mut StdRng::seed_from_u64(9));
        let mut banks_hit = [false; FOOTPRINT.banks];
        for txn in trace.transactions() {
            banks_hit[txn.bank] = true;
        }
        assert!(
            banks_hit.iter().all(|&hit| hit),
            "hot set piled into few banks"
        );
    }
}
