//! Per-bank and aggregate traffic telemetry.
//!
//! Counters are exact integers and the latency/energy accumulators are
//! filled in a fixed per-bank order, so two runs of the same configuration
//! — serial or parallel, any thread count — produce **equal** telemetry.
//! The engine's determinism test leans on the `PartialEq` here.

use serde::{Deserialize, Serialize};
use stt_stats::{Histogram, Summary};
use stt_units::{Joules, Seconds};

/// Binning for the read-latency histogram: destructive reads with retries
/// run to ~3×25 ns, so 0–100 ns in 2 ns bins covers every scheme.
const LATENCY_BINS: usize = 50;
const LATENCY_LOW_NS: f64 = 0.0;
const LATENCY_HIGH_NS: f64 = 100.0;

/// Counters for one bank.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BankTelemetry {
    /// Reads served (including those aborted by a power cut).
    pub reads: u64,
    /// Writes served.
    pub writes: u64,
    /// Extra sense attempts beyond the first, across all reads.
    pub read_retries: u64,
    /// Reads resolved by the fallback (no attempt cleared the guard band).
    pub unconfident_reads: u64,
    /// Reads whose delivered bit disagreed with the host's last write.
    pub misreads: u64,
    /// Extra programming pulses beyond the first, across all writes.
    pub write_retries: u64,
    /// Writes whose cell never switched within the pulse budget.
    pub write_failures: u64,
    /// Power cuts injected mid-read.
    pub power_cuts: u64,
    /// Cells whose stored state a power cut changed.
    pub corrupted_bits: u64,
    /// Completed-read latency in nanoseconds (retries included).
    pub read_latency_ns: Summary,
    /// Completed-read latency histogram (nanoseconds).
    pub read_latency_hist: Histogram,
    /// Total busy time across served transactions.
    pub busy_time: Seconds,
    /// Total energy across served transactions.
    pub energy: Joules,
}

impl BankTelemetry {
    /// Fresh, all-zero telemetry.
    #[must_use]
    pub fn new() -> Self {
        Self {
            reads: 0,
            writes: 0,
            read_retries: 0,
            unconfident_reads: 0,
            misreads: 0,
            write_retries: 0,
            write_failures: 0,
            power_cuts: 0,
            corrupted_bits: 0,
            read_latency_ns: Summary::new(),
            read_latency_hist: Histogram::new(LATENCY_LOW_NS, LATENCY_HIGH_NS, LATENCY_BINS),
            busy_time: Seconds::ZERO,
            energy: Joules::ZERO,
        }
    }

    /// Records one completed read's total latency.
    pub fn record_read_latency(&mut self, latency: Seconds) {
        let nanos = latency.get() * 1e9;
        self.read_latency_ns.push(nanos);
        self.read_latency_hist.push(nanos);
    }

    /// Folds another bank's counters into this one.
    pub fn merge(&mut self, other: &BankTelemetry) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.read_retries += other.read_retries;
        self.unconfident_reads += other.unconfident_reads;
        self.misreads += other.misreads;
        self.write_retries += other.write_retries;
        self.write_failures += other.write_failures;
        self.power_cuts += other.power_cuts;
        self.corrupted_bits += other.corrupted_bits;
        self.read_latency_ns.merge(&other.read_latency_ns);
        self.read_latency_hist.merge(&other.read_latency_hist);
        self.busy_time += other.busy_time;
        self.energy += other.energy;
    }

    /// Misread rate over served reads (0 when no reads ran).
    #[must_use]
    pub fn misread_rate(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.misreads as f64 / self.reads as f64
        }
    }
}

impl Default for BankTelemetry {
    fn default() -> Self {
        Self::new()
    }
}

/// Telemetry for a full controller run: per-bank breakdown plus the final
/// integrity audit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Telemetry {
    /// One entry per bank, in bank order.
    pub banks: Vec<BankTelemetry>,
    /// Cells whose post-trace stored state disagrees with the host's view
    /// of what it wrote (summed over banks).
    pub audit_corrupted_bits: u64,
}

impl Telemetry {
    /// Sums every bank into one set of counters (bank order, so the result
    /// is deterministic).
    #[must_use]
    pub fn aggregate(&self) -> BankTelemetry {
        let mut total = BankTelemetry::new();
        for bank in &self.banks {
            total.merge(bank);
        }
        total
    }

    /// Total transactions served.
    #[must_use]
    pub fn transactions(&self) -> u64 {
        self.banks.iter().map(|b| b.reads + b.writes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn telemetry_with(reads: u64, misreads: u64) -> BankTelemetry {
        let mut t = BankTelemetry::new();
        t.reads = reads;
        t.misreads = misreads;
        for i in 0..reads {
            t.record_read_latency(Seconds::from_nano(14.0 + i as f64));
        }
        t
    }

    #[test]
    fn merge_sums_counters_and_accumulators() {
        let a = telemetry_with(10, 1);
        let b = telemetry_with(20, 3);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.reads, 30);
        assert_eq!(merged.misreads, 4);
        assert_eq!(merged.read_latency_ns.len(), 30);
        assert_eq!(merged.read_latency_hist.total(), 30);
    }

    #[test]
    fn aggregate_is_order_of_banks() {
        let telemetry = Telemetry {
            banks: vec![telemetry_with(5, 0), telemetry_with(7, 2)],
            audit_corrupted_bits: 0,
        };
        let total = telemetry.aggregate();
        assert_eq!(total.reads, 12);
        assert_eq!(total.misreads, 2);
        assert_eq!(telemetry.transactions(), 12);
    }

    #[test]
    fn misread_rate_handles_empty() {
        assert_eq!(BankTelemetry::new().misread_rate(), 0.0);
        assert!((telemetry_with(10, 1).misread_rate() - 0.1).abs() < 1e-12);
    }
}
