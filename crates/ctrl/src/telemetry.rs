//! Per-bank and aggregate traffic telemetry.
//!
//! Counters are exact integers and the latency/energy accumulators are
//! filled in a fixed per-bank order, so two runs of the same configuration
//! — serial or parallel, any thread count — produce **equal** telemetry.
//! The engine's determinism test leans on the `PartialEq` here.

use serde::{Deserialize, Serialize};
use stt_stats::{quantile, Histogram, P2Quantile, Summary};
use stt_units::{Joules, Seconds};

/// How many leading samples streaming mode folds into the P² estimators
/// at full rate before decimation starts.
pub const STREAMING_WARMUP: u64 = 64;

/// Post-warm-up decimation stride of streaming mode: every `STRIDE`-th
/// sample is folded, the rest only counted.
pub const STREAMING_STRIDE: u64 = 8;

/// Sojourn-time statistics for one bank queue — columnar accumulators, not
/// per-transaction rows.
///
/// The default [`SojournStats::Streaming`] mode estimates p50/p95/p99 with
/// three fixed-memory P² estimators, so telemetry stays O(1) per bank no
/// matter how many transactions flow through — the raw-speed contract of
/// DESIGN.md §12. Folding a sample into all three estimators costs ~50 ns
/// on the reference host — alone more than the frontend's whole per-txn
/// overhead budget — so streaming mode feeds them on a deterministic
/// schedule instead of per sample: the first [`STREAMING_WARMUP`] samples
/// of a stream are folded at full rate, after which every
/// [`STREAMING_STRIDE`]-th sample is folded and the rest are only counted.
/// Systematic (fixed-stride) subsampling of a stationary stream is an
/// unbiased quantile estimate; the added error shrinks with stream length
/// and is documented in DESIGN.md §12. [`SojournStats::Exact`] retains
/// every sample for true order-statistic quantiles; tests and sweeps that
/// assert on exact sample quantiles opt in via
/// [`FrontendConfig::with_exact_sojourn`](crate::sched::FrontendConfig).
///
/// Both modes are pure functions of the observation sequence, so
/// deterministic replays still compare equal with `==`.
// The large variant is the default one, live in every lane of every run;
// boxing it would buy nothing but a pointer chase on the per-completion
// observe path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SojournStats {
    /// Fixed-memory streaming estimators (the default).
    Streaming {
        /// Number of sojourn samples observed.
        count: u64,
        /// Streaming median estimator.
        p50: P2Quantile,
        /// Streaming 95th-percentile estimator.
        p95: P2Quantile,
        /// Streaming 99th-percentile estimator.
        p99: P2Quantile,
    },
    /// Raw per-completion samples (opt-in; exact quantiles, unbounded
    /// memory).
    Exact {
        /// Sojourn samples in completion order (nanoseconds).
        samples: Vec<f64>,
    },
}

impl SojournStats {
    /// An empty streaming accumulator.
    #[must_use]
    pub fn streaming() -> Self {
        SojournStats::Streaming {
            count: 0,
            p50: P2Quantile::new(0.50),
            p95: P2Quantile::new(0.95),
            p99: P2Quantile::new(0.99),
        }
    }

    /// An empty exact-sample accumulator.
    #[must_use]
    pub fn exact() -> Self {
        SojournStats::Exact {
            samples: Vec::new(),
        }
    }

    /// Folds one sojourn sample (nanoseconds) in.
    ///
    /// Streaming mode counts every sample but folds only the deterministic
    /// warm-up/stride subsequence into the P² estimators (see the type
    /// docs); exact mode stores everything.
    pub fn observe(&mut self, sojourn_ns: f64) {
        match self {
            SojournStats::Streaming {
                count,
                p50,
                p95,
                p99,
            } => {
                *count += 1;
                let n = *count;
                if n <= STREAMING_WARMUP
                    || (n - STREAMING_WARMUP - 1).is_multiple_of(STREAMING_STRIDE)
                {
                    p50.observe(sojourn_ns);
                    p95.observe(sojourn_ns);
                    p99.observe(sojourn_ns);
                }
            }
            SojournStats::Exact { samples } => samples.push(sojourn_ns),
        }
    }

    /// Number of samples observed.
    #[must_use]
    pub fn count(&self) -> u64 {
        match self {
            SojournStats::Streaming { count, .. } => *count,
            SojournStats::Exact { samples } => samples.len() as u64,
        }
    }

    /// The `q`-quantile, or `None` before any sample. Exact mode serves any
    /// `q` as an order statistic; streaming mode serves the *nearest tracked*
    /// quantile (0.50, 0.95, 0.99) — the only ones the frontend reports.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        match self {
            SojournStats::Exact { samples } => {
                if samples.is_empty() {
                    None
                } else {
                    Some(quantile(samples, q))
                }
            }
            SojournStats::Streaming { p50, p95, p99, .. } => {
                let nearest = [p50, p95, p99]
                    .into_iter()
                    .min_by(|a, b| (a.q() - q).abs().total_cmp(&(b.q() - q).abs()))
                    .expect("three candidates");
                nearest.estimate()
            }
        }
    }

    /// Folds another accumulator in. Same-mode merges are natural (estimator
    /// merge / sample concatenation). When the modes differ, an *empty* side
    /// adopts the other's mode — so aggregating exact-mode banks into a
    /// default accumulator stays exact — and two non-empty sides degrade to
    /// streaming by re-observing the exact side's samples.
    pub fn merge(&mut self, other: &SojournStats) {
        if other.count() == 0 {
            return;
        }
        if self.count() == 0 && std::mem::discriminant(self) != std::mem::discriminant(other) {
            *self = other.clone();
            return;
        }
        // Mixed-mode with an exact left side: degrade to streaming by
        // replaying our samples into a copy of the streaming right side.
        if matches!(self, SojournStats::Exact { .. })
            && matches!(other, SojournStats::Streaming { .. })
        {
            let own = std::mem::replace(self, other.clone());
            if let SojournStats::Exact { samples } = own {
                for x in samples {
                    self.observe(x);
                }
            }
            return;
        }
        match (self, other) {
            (
                SojournStats::Streaming {
                    count,
                    p50,
                    p95,
                    p99,
                },
                SojournStats::Streaming {
                    count: oc,
                    p50: o50,
                    p95: o95,
                    p99: o99,
                },
            ) => {
                *count += oc;
                p50.merge(o50);
                p95.merge(o95);
                p99.merge(o99);
            }
            (SojournStats::Exact { samples }, SojournStats::Exact { samples: os }) => {
                samples.extend_from_slice(os);
            }
            (
                SojournStats::Streaming {
                    count,
                    p50,
                    p95,
                    p99,
                },
                SojournStats::Exact { samples },
            ) => {
                // Re-observe on the same warm-up/stride schedule observe()
                // uses, so the result is a pure function of the sequence.
                for &x in samples {
                    *count += 1;
                    let n = *count;
                    if n <= STREAMING_WARMUP
                        || (n - STREAMING_WARMUP - 1).is_multiple_of(STREAMING_STRIDE)
                    {
                        p50.observe(x);
                        p95.observe(x);
                        p99.observe(x);
                    }
                }
            }
            (SojournStats::Exact { .. }, SojournStats::Streaming { .. }) => {
                unreachable!("handled above")
            }
        }
    }
}

impl Default for SojournStats {
    fn default() -> Self {
        Self::streaming()
    }
}

/// Binning for the read-latency histogram.
///
/// Destructive reads with retries run to ~3×25 ns, so the default 0–100 ns
/// range in 2 ns bins covers every scheme's *service* latency. Queueing
/// delays under load are open-ended, though, so the bounds are configurable
/// per controller and the histogram's explicit overflow bucket (see
/// [`Histogram::overflow`]) is surfaced by every report instead of letting
/// saturated samples vanish into the top bin.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyBounds {
    /// Lower edge of the histogram range (nanoseconds).
    pub low_ns: f64,
    /// Upper edge of the histogram range (nanoseconds); samples at or above
    /// it land in the overflow bucket.
    pub high_ns: f64,
    /// Number of equal-width bins.
    pub bins: usize,
}

impl LatencyBounds {
    /// The historical fixed binning: 0–100 ns in 2 ns bins.
    #[must_use]
    pub fn date2010() -> Self {
        Self {
            low_ns: 0.0,
            high_ns: 100.0,
            bins: 50,
        }
    }

    /// Overrides the upper edge, keeping the 2 ns bin width.
    ///
    /// # Panics
    ///
    /// Panics if `high_ns` is not above the lower edge.
    #[must_use]
    pub fn with_high_ns(mut self, high_ns: f64) -> Self {
        assert!(
            high_ns > self.low_ns,
            "histogram upper edge {high_ns} must exceed lower edge {}",
            self.low_ns
        );
        self.high_ns = high_ns;
        self.bins = (((high_ns - self.low_ns) / 2.0).ceil() as usize).max(1);
        self
    }

    /// Builds an empty histogram with these bounds.
    #[must_use]
    pub fn histogram(&self) -> Histogram {
        Histogram::new(self.low_ns, self.high_ns, self.bins)
    }
}

impl Default for LatencyBounds {
    fn default() -> Self {
        Self::date2010()
    }
}

/// Queueing counters for one bank, filled only by the event-driven
/// [`sched`](crate::sched) frontend (serial replay has no queues, so these
/// stay zero there).
///
/// Sojourn time is measured from a transaction's *arrival* (its timestamp in
/// the trace) to its completion, so it includes admission stalls, queueing
/// delay and service; waiting time is measured from admission into the bank
/// queue to the start of service.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct QueueTelemetry {
    /// Transactions admitted into the bank queue (or started directly).
    pub admitted: u64,
    /// Transactions served to completion.
    pub completed: u64,
    /// Transactions dropped on a full queue under
    /// [`Backpressure::Drop`](crate::sched::Backpressure).
    pub dropped: u64,
    /// Admissions that stalled on a full queue under
    /// [`Backpressure::Stall`](crate::sched::Backpressure).
    pub stalls: u64,
    /// Total time admission spent stalled (nanoseconds).
    pub stall_time_ns: f64,
    /// Re-offered admissions under
    /// [`Backpressure::Retry`](crate::sched::Backpressure).
    pub retried_admissions: u64,
    /// Largest waiting-queue depth ever observed.
    pub max_depth: u64,
    /// Time integral of waiting-queue depth (nanoseconds × entries); divide
    /// by [`QueueTelemetry::horizon_ns`] for the time-averaged occupancy.
    pub depth_time_ns: f64,
    /// Observed horizon (nanoseconds) over which the depth integral ran.
    pub horizon_ns: f64,
    /// Waiting time from admission to start of service (nanoseconds).
    pub wait_ns: Summary,
    /// Columnar sojourn-time statistics: fixed-memory streaming quantiles by
    /// default, raw samples when the run opted into exact mode.
    #[serde(default)]
    pub sojourn: SojournStats,
    /// Scrub ticks that found the bank busy or demand waiting and yielded
    /// (background priority: demand always preempts at arbitration).
    #[serde(default)]
    pub scrub_deferred: u64,
    /// March-test dispatch attempts that found the bank busy or demand
    /// waiting and yielded (test priority: below demand, above scrub).
    #[serde(default)]
    pub march_deferred: u64,
    /// Calibration-daemon ticks that found the bank busy or higher-class
    /// work waiting and yielded (background priority, like scrub).
    #[serde(default)]
    pub calib_deferred: u64,
}

impl QueueTelemetry {
    /// Time-averaged waiting-queue depth (0 when nothing was observed).
    #[must_use]
    pub fn mean_depth(&self) -> f64 {
        if self.horizon_ns > 0.0 {
            self.depth_time_ns / self.horizon_ns
        } else {
            0.0
        }
    }

    /// The `q`-quantile of completed-transaction sojourn time, or `None`
    /// when nothing completed. Exact in exact-sample mode; in the default
    /// streaming mode this serves the nearest tracked quantile (see
    /// [`SojournStats::quantile`]).
    #[must_use]
    pub fn sojourn_quantile(&self, q: f64) -> Option<f64> {
        self.sojourn.quantile(q)
    }

    /// Median sojourn time in nanoseconds (0 when nothing completed).
    #[must_use]
    pub fn sojourn_p50(&self) -> f64 {
        self.sojourn_quantile(0.50).unwrap_or(0.0)
    }

    /// 95th-percentile sojourn time in nanoseconds (0 when nothing
    /// completed).
    #[must_use]
    pub fn sojourn_p95(&self) -> f64 {
        self.sojourn_quantile(0.95).unwrap_or(0.0)
    }

    /// 99th-percentile sojourn time in nanoseconds (0 when nothing
    /// completed).
    #[must_use]
    pub fn sojourn_p99(&self) -> f64 {
        self.sojourn_quantile(0.99).unwrap_or(0.0)
    }

    /// Folds another bank's queueing counters into this one. Depth
    /// integrals and horizons add, so the merged [`Self::mean_depth`] is the
    /// per-bank average occupancy.
    pub fn merge(&mut self, other: &QueueTelemetry) {
        self.admitted += other.admitted;
        self.completed += other.completed;
        self.dropped += other.dropped;
        self.stalls += other.stalls;
        self.stall_time_ns += other.stall_time_ns;
        self.retried_admissions += other.retried_admissions;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.depth_time_ns += other.depth_time_ns;
        self.horizon_ns += other.horizon_ns;
        self.wait_ns.merge(&other.wait_ns);
        self.sojourn.merge(&other.sojourn);
        self.scrub_deferred += other.scrub_deferred;
        self.march_deferred += other.march_deferred;
        self.calib_deferred += other.calib_deferred;
    }
}

/// Cap on per-bank error-address log entries; overflow is counted in
/// [`EccTelemetry::error_log_dropped`] so heavy fault campaigns stay
/// bounded in memory without losing the totals.
pub const ERROR_LOG_CAP: usize = 64;

/// What kind of ECC event an [`EccEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EccEventKind {
    /// A demand read corrected a single-bit error.
    DemandCe,
    /// A demand read detected an uncorrectable (double-bit) error.
    DemandUe,
    /// A demand read passed the codec but delivered a wrong word.
    DemandSilent,
    /// A scrub scan corrected (and rewrote) a single-bit error.
    ScrubCe,
    /// A scrub scan found an uncorrectable word it could not repair.
    ScrubUe,
}

/// One entry of a bank's error-address log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EccEvent {
    /// ECC word index within the bank.
    pub word: u32,
    /// What happened there.
    pub kind: EccEventKind,
}

/// ECC and scrub counters for one bank, filled only when the controller
/// runs with [`EccMode::Secded`](crate::reliability::EccMode) (all zero
/// otherwise, exactly like the queueing section under serial replay).
///
/// Demand-read classifications are mutually exclusive and sum to the
/// ECC-served read count: `clean_reads + corrected_ce + detected_ue +
/// silent_errors`. *Silent* means the codec reported clean-or-corrected
/// but the delivered word still disagreed with the host's truth mirror —
/// the residue (≥3-bit flips, miscorrections) that survives SECDED.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EccTelemetry {
    /// Demand reads whose word decoded clean and matched the truth mirror.
    pub clean_reads: u64,
    /// Demand reads whose single-bit error was corrected to the truth.
    pub corrected_ce: u64,
    /// Demand reads whose word decoded uncorrectable (host is warned).
    pub detected_ue: u64,
    /// Demand reads the codec passed but whose delivered word was wrong.
    pub silent_errors: u64,
    /// Words scanned by the background scrub daemon.
    pub scrub_words_scanned: u64,
    /// Scrub scans that corrected a CE.
    pub scrub_ce_corrected: u64,
    /// Scrub scans that found an uncorrectable word.
    pub scrub_ue_found: u64,
    /// Cells the scrub physically rewrote (repairs of persistent damage).
    pub scrub_cells_rewritten: u64,
    /// Completed full scrub passes over the bank.
    pub scrub_passes: u64,
    /// Bank-occupancy time spent scrubbing (senses and repair writes).
    /// Deliberately separate from [`BankTelemetry::busy_time`]: demand
    /// busy time doubles as the retention-failure clock, and folding scrub
    /// work into it would make scrubbing accelerate the decay it repairs —
    /// and give protection levels mismatched fault exposure at matched
    /// traffic.
    #[serde(default)]
    pub scrub_busy_time: Seconds,
    /// ECC words in this bank (coverage-gauge denominator; 0 = ECC off).
    pub words_total: u64,
    /// Error-address log, capped at [`ERROR_LOG_CAP`] entries per bank.
    pub error_log: Vec<EccEvent>,
    /// Events that no longer fit in the log.
    pub error_log_dropped: u64,
}

impl EccTelemetry {
    /// Scrub-coverage gauge: words scanned per word of capacity. `1.0`
    /// means one full pass; values above count repeat passes; `0.0` when
    /// ECC is off or scrub never ran.
    #[must_use]
    pub fn scrub_coverage(&self) -> f64 {
        if self.words_total == 0 {
            0.0
        } else {
            self.scrub_words_scanned as f64 / self.words_total as f64
        }
    }

    /// Uncorrectable-plus-silent rate over classified demand reads — the
    /// campaign's graceful-degradation metric (0 when nothing classified).
    #[must_use]
    pub fn hazard_rate(&self) -> f64 {
        let classified =
            self.clean_reads + self.corrected_ce + self.detected_ue + self.silent_errors;
        if classified == 0 {
            0.0
        } else {
            (self.detected_ue + self.silent_errors) as f64 / classified as f64
        }
    }

    /// Appends an event to the log, honouring the cap.
    pub fn log_event(&mut self, word: usize, kind: EccEventKind) {
        if self.error_log.len() < ERROR_LOG_CAP {
            self.error_log.push(EccEvent {
                word: word as u32,
                kind,
            });
        } else {
            self.error_log_dropped += 1;
        }
    }

    /// Folds another bank's ECC counters into this one.
    pub fn merge(&mut self, other: &EccTelemetry) {
        self.clean_reads += other.clean_reads;
        self.corrected_ce += other.corrected_ce;
        self.detected_ue += other.detected_ue;
        self.silent_errors += other.silent_errors;
        self.scrub_words_scanned += other.scrub_words_scanned;
        self.scrub_ce_corrected += other.scrub_ce_corrected;
        self.scrub_ue_found += other.scrub_ue_found;
        self.scrub_cells_rewritten += other.scrub_cells_rewritten;
        self.scrub_passes += other.scrub_passes;
        self.scrub_busy_time += other.scrub_busy_time;
        self.words_total += other.words_total;
        let room = ERROR_LOG_CAP.saturating_sub(self.error_log.len());
        let taken = room.min(other.error_log.len());
        self.error_log.extend_from_slice(&other.error_log[..taken]);
        self.error_log_dropped += other.error_log_dropped + (other.error_log.len() - taken) as u64;
    }
}

/// One entry of a bank's March-test fail log: a read element whose
/// delivered bit disagreed with the value the algorithm expected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MarchFail {
    /// Row-major cell index within the bank.
    pub cell: u32,
    /// Index of the March element (0-based) whose read caught the fault.
    pub element: u8,
    /// The bit the element expected.
    pub expected: bool,
    /// The bit the sensing path delivered.
    pub got: bool,
}

/// March-test verdicts for one bank, filled only while a
/// [`MarchProgram`](crate::march::MarchProgram) runs against it (all zero
/// otherwise). Every verdict comes from the real sensing path —
/// [`Bank`](crate::bank) serves each March read through the configured
/// scheme (and ECC word path when enabled), so a mismatch here is a fault
/// the production read path actually delivered to the tester.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MarchTelemetry {
    /// March operations executed (reads + writes).
    pub ops: u64,
    /// March read operations executed.
    pub reads: u64,
    /// March write operations executed.
    pub writes: u64,
    /// Read elements whose delivered bit disagreed with the expectation.
    pub mismatches: u64,
    /// Distinct cells (row-major indices) with at least one mismatch — the
    /// tester's fail bitmap, deduplicated.
    pub failing_cells: std::collections::BTreeSet<u32>,
    /// Per-mismatch detail log, capped at [`ERROR_LOG_CAP`] entries.
    pub fail_log: Vec<MarchFail>,
    /// Mismatches that no longer fit in the log.
    pub fail_log_dropped: u64,
    /// Bank-occupancy time spent on March operations. Separate from
    /// [`BankTelemetry::busy_time`] for the same reason scrub time is: the
    /// demand busy clock doubles as the retention-decay clock, and test
    /// traffic must not accelerate the decay it is screening for.
    pub busy_time: Seconds,
}

impl MarchTelemetry {
    /// Records one read-verdict mismatch.
    pub fn record_mismatch(&mut self, cell: u32, element: u8, expected: bool, got: bool) {
        self.mismatches += 1;
        self.failing_cells.insert(cell);
        if self.fail_log.len() < ERROR_LOG_CAP {
            self.fail_log.push(MarchFail {
                cell,
                element,
                expected,
                got,
            });
        } else {
            self.fail_log_dropped += 1;
        }
    }

    /// Folds another bank's March verdicts into this one.
    pub fn merge(&mut self, other: &MarchTelemetry) {
        self.ops += other.ops;
        self.reads += other.reads;
        self.writes += other.writes;
        self.mismatches += other.mismatches;
        self.failing_cells
            .extend(other.failing_cells.iter().copied());
        let room = ERROR_LOG_CAP.saturating_sub(self.fail_log.len());
        let taken = room.min(other.fail_log.len());
        self.fail_log.extend_from_slice(&other.fail_log[..taken]);
        self.fail_log_dropped += other.fail_log_dropped + (other.fail_log.len() - taken) as u64;
        self.busy_time += other.busy_time;
    }
}

/// Calibration-daemon counters for one bank, filled only when a
/// [`CalibConfig`](crate::calib::CalibConfig) is active (all zero
/// otherwise). The trip → burst → refit protocol is documented in
/// [`calib`](crate::calib) and DESIGN.md §15.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CalibTelemetry {
    /// Trip-condition evaluations that crossed the threshold.
    pub trips: u64,
    /// Calibration bursts issued (one per trip that reached the bank).
    pub bursts: u64,
    /// Reference-cell senses performed across all bursts.
    pub burst_reads: u64,
    /// β refits that swapped a new operating point into the read path.
    pub refits: u64,
    /// The β the bank's sensing scheme currently runs at (0 until the
    /// first refit reports one; self-referenced schemes only).
    pub last_beta: f64,
    /// Bank-occupancy time spent on calibration bursts. Separate from
    /// [`BankTelemetry::busy_time`] for the same reason scrub and March
    /// time are: the demand busy clock doubles as the retention-decay and
    /// drift clock, and maintenance traffic must not accelerate the drift
    /// it compensates for.
    pub busy_time: Seconds,
}

impl CalibTelemetry {
    /// Folds another bank's calibration counters into this one.
    pub fn merge(&mut self, other: &CalibTelemetry) {
        self.trips += other.trips;
        self.bursts += other.bursts;
        self.burst_reads += other.burst_reads;
        self.refits += other.refits;
        if other.refits > 0 {
            self.last_beta = other.last_beta;
        }
        self.busy_time += other.busy_time;
    }
}

/// Counters for one bank.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BankTelemetry {
    /// Reads served (including those aborted by a power cut).
    pub reads: u64,
    /// Writes served.
    pub writes: u64,
    /// Extra sense attempts beyond the first, across all reads.
    pub read_retries: u64,
    /// Reads resolved by the fallback (no attempt cleared the guard band).
    pub unconfident_reads: u64,
    /// Reads whose delivered bit disagreed with the host's last write.
    pub misreads: u64,
    /// Extra programming pulses beyond the first, across all writes.
    pub write_retries: u64,
    /// Writes whose cell never switched within the pulse budget.
    pub write_failures: u64,
    /// Power cuts injected mid-read.
    pub power_cuts: u64,
    /// Cells whose stored state a power cut changed.
    pub corrupted_bits: u64,
    /// Cells flipped by retention failures (time-dependent decay between
    /// accesses, see [`FaultPlan::retention_rate_per_ns`](crate::FaultPlan)).
    #[serde(default)]
    pub retention_flips: u64,
    /// Cells flipped by read disturb (per-read victim-word flips, see
    /// [`FaultPlan::read_disturb_prob`](crate::FaultPlan)).
    #[serde(default)]
    pub read_disturb_flips: u64,
    /// Writes silently swallowed by a write transition fault (see
    /// [`TransitionFault`](crate::TransitionFault)).
    #[serde(default)]
    pub write_transition_faults: u64,
    /// Completed writes undone by a backhopping flip (see
    /// [`BackhopCell`](crate::BackhopCell)).
    #[serde(default)]
    pub backhop_flips: u64,
    /// Victim-cell overwrites triggered by intra-word coupling defects (see
    /// [`CouplingFault`](crate::CouplingFault)).
    #[serde(default)]
    pub coupling_triggers: u64,
    /// Completed-read latency in nanoseconds (retries included).
    pub read_latency_ns: Summary,
    /// Completed-read latency histogram (nanoseconds); out-of-range samples
    /// are counted in its explicit underflow/overflow buckets.
    pub read_latency_hist: Histogram,
    /// Total busy time across served transactions.
    pub busy_time: Seconds,
    /// Total energy across served transactions.
    pub energy: Joules,
    /// Queueing counters, filled by the [`sched`](crate::sched) frontend
    /// (all zero under serial replay).
    pub queue: QueueTelemetry,
    /// ECC and scrub counters, filled only under
    /// [`EccMode::Secded`](crate::reliability::EccMode) (all zero when ECC
    /// is off).
    #[serde(default)]
    pub ecc: EccTelemetry,
    /// March-test verdicts, filled only while a March program runs against
    /// this bank (all zero otherwise).
    #[serde(default)]
    pub march: MarchTelemetry,
    /// Calibration-daemon counters, filled only when a calibration config
    /// is active (all zero otherwise).
    #[serde(default)]
    pub calib: CalibTelemetry,
}

impl BankTelemetry {
    /// Fresh, all-zero telemetry with the default histogram bounds.
    #[must_use]
    pub fn new() -> Self {
        Self::with_bounds(&LatencyBounds::date2010())
    }

    /// Fresh, all-zero telemetry with the given latency-histogram bounds.
    #[must_use]
    pub fn with_bounds(bounds: &LatencyBounds) -> Self {
        Self {
            reads: 0,
            writes: 0,
            read_retries: 0,
            unconfident_reads: 0,
            misreads: 0,
            write_retries: 0,
            write_failures: 0,
            power_cuts: 0,
            corrupted_bits: 0,
            retention_flips: 0,
            read_disturb_flips: 0,
            write_transition_faults: 0,
            backhop_flips: 0,
            coupling_triggers: 0,
            read_latency_ns: Summary::new(),
            read_latency_hist: bounds.histogram(),
            busy_time: Seconds::ZERO,
            energy: Joules::ZERO,
            queue: QueueTelemetry::default(),
            ecc: EccTelemetry::default(),
            march: MarchTelemetry::default(),
            calib: CalibTelemetry::default(),
        }
    }

    /// Records one completed read's total latency.
    pub fn record_read_latency(&mut self, latency: Seconds) {
        let nanos = latency.get() * 1e9;
        self.read_latency_ns.push(nanos);
        self.read_latency_hist.push(nanos);
    }

    /// Folds another bank's counters into this one.
    pub fn merge(&mut self, other: &BankTelemetry) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.read_retries += other.read_retries;
        self.unconfident_reads += other.unconfident_reads;
        self.misreads += other.misreads;
        self.write_retries += other.write_retries;
        self.write_failures += other.write_failures;
        self.power_cuts += other.power_cuts;
        self.corrupted_bits += other.corrupted_bits;
        self.retention_flips += other.retention_flips;
        self.read_disturb_flips += other.read_disturb_flips;
        self.write_transition_faults += other.write_transition_faults;
        self.backhop_flips += other.backhop_flips;
        self.coupling_triggers += other.coupling_triggers;
        self.read_latency_ns.merge(&other.read_latency_ns);
        self.read_latency_hist.merge(&other.read_latency_hist);
        self.busy_time += other.busy_time;
        self.energy += other.energy;
        self.queue.merge(&other.queue);
        self.ecc.merge(&other.ecc);
        self.march.merge(&other.march);
        self.calib.merge(&other.calib);
    }

    /// Misread rate over served reads (0 when no reads ran).
    #[must_use]
    pub fn misread_rate(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.misreads as f64 / self.reads as f64
        }
    }
}

impl Default for BankTelemetry {
    fn default() -> Self {
        Self::new()
    }
}

/// Engine counters for one hierarchy channel, filled by the
/// [`hierarchy`](crate::hierarchy) chip engine: source activity, shared-bus
/// contention and outstanding-window behaviour that no single bank can see.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ChannelTelemetry {
    /// Transactions the channel's source issued (or was offered).
    pub issued: u64,
    /// Transactions served to completion (data transferred off-chip).
    pub completed: u64,
    /// Closed-loop issue attempts gated by a full outstanding window — the
    /// backpressure signal that makes the source's rate *react* to load.
    pub source_throttled: u64,
    /// Largest number of simultaneously outstanding transactions observed.
    pub max_outstanding: u64,
    /// Total time completed transfers waited for a busy group or channel
    /// bus (nanoseconds) — the serialization cost the hierarchy exists to
    /// expose.
    pub bus_wait_ns: f64,
    /// Total time the channel's buses spent transferring (nanoseconds).
    pub bus_busy_ns: f64,
    /// Observed horizon (nanoseconds) of the channel's event loop.
    pub horizon_ns: f64,
}

impl ChannelTelemetry {
    /// Folds another channel's counters into this one.
    pub fn merge(&mut self, other: &ChannelTelemetry) {
        self.issued += other.issued;
        self.completed += other.completed;
        self.source_throttled += other.source_throttled;
        self.max_outstanding = self.max_outstanding.max(other.max_outstanding);
        self.bus_wait_ns += other.bus_wait_ns;
        self.bus_busy_ns += other.bus_busy_ns;
        self.horizon_ns += other.horizon_ns;
    }

    /// Mean bus wait per completed transfer (0 when nothing completed).
    #[must_use]
    pub fn mean_bus_wait_ns(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.bus_wait_ns / self.completed as f64
        }
    }
}

/// Rolls per-bank telemetry up to an arbitrary hierarchy level: entries are
/// merged per key (bank group, rank, channel — any projection of a bank's
/// coordinate), in key order, so the result is deterministic. This is the
/// one aggregation primitive behind every bank → group → rank → channel →
/// chip roll-up the hierarchy reports.
pub fn rollup_by<'a, K: Ord>(
    entries: impl IntoIterator<Item = (K, &'a BankTelemetry)>,
) -> std::collections::BTreeMap<K, BankTelemetry> {
    let mut levels: std::collections::BTreeMap<K, BankTelemetry> =
        std::collections::BTreeMap::new();
    for (key, telemetry) in entries {
        match levels.entry(key) {
            std::collections::btree_map::Entry::Vacant(slot) => {
                slot.insert(telemetry.clone());
            }
            std::collections::btree_map::Entry::Occupied(mut slot) => {
                slot.get_mut().merge(telemetry);
            }
        }
    }
    levels
}

/// Telemetry for a full controller run: per-bank breakdown plus the final
/// integrity audit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Telemetry {
    /// One entry per bank, in bank order.
    pub banks: Vec<BankTelemetry>,
    /// Cells whose post-trace stored state disagrees with the host's view
    /// of what it wrote (summed over banks).
    pub audit_corrupted_bits: u64,
}

impl Telemetry {
    /// Sums every bank into one set of counters (bank order, so the result
    /// is deterministic). Seeds the accumulator from the first bank so the
    /// histogram keeps whatever bounds the controller was configured with.
    #[must_use]
    pub fn aggregate(&self) -> BankTelemetry {
        let mut banks = self.banks.iter();
        let mut total = banks.next().cloned().unwrap_or_default();
        for bank in banks {
            total.merge(bank);
        }
        total
    }

    /// Total transactions served.
    #[must_use]
    pub fn transactions(&self) -> u64 {
        self.banks.iter().map(|b| b.reads + b.writes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn telemetry_with(reads: u64, misreads: u64) -> BankTelemetry {
        let mut t = BankTelemetry::new();
        t.reads = reads;
        t.misreads = misreads;
        for i in 0..reads {
            t.record_read_latency(Seconds::from_nano(14.0 + i as f64));
        }
        t
    }

    #[test]
    fn merge_sums_counters_and_accumulators() {
        let a = telemetry_with(10, 1);
        let b = telemetry_with(20, 3);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.reads, 30);
        assert_eq!(merged.misreads, 4);
        assert_eq!(merged.read_latency_ns.len(), 30);
        assert_eq!(merged.read_latency_hist.total(), 30);
    }

    #[test]
    fn aggregate_is_order_of_banks() {
        let telemetry = Telemetry {
            banks: vec![telemetry_with(5, 0), telemetry_with(7, 2)],
            audit_corrupted_bits: 0,
        };
        let total = telemetry.aggregate();
        assert_eq!(total.reads, 12);
        assert_eq!(total.misreads, 2);
        assert_eq!(telemetry.transactions(), 12);
    }

    #[test]
    fn misread_rate_handles_empty() {
        assert_eq!(BankTelemetry::new().misread_rate(), 0.0);
        assert!((telemetry_with(10, 1).misread_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn custom_bounds_capture_queueing_scale_latencies() {
        // The fixed 100 ns ceiling would push sojourn-scale samples into the
        // overflow bucket; widened bounds bin them, and the overflow count
        // stays visible either way.
        let mut fixed = BankTelemetry::new();
        let mut wide = BankTelemetry::with_bounds(&LatencyBounds::date2010().with_high_ns(1000.0));
        for latency_ns in [40.0, 250.0, 900.0] {
            fixed.record_read_latency(Seconds::from_nano(latency_ns));
            wide.record_read_latency(Seconds::from_nano(latency_ns));
        }
        assert_eq!(fixed.read_latency_hist.overflow(), 2);
        assert_eq!(wide.read_latency_hist.overflow(), 0);
        assert_eq!(wide.read_latency_hist.total(), 3);
    }

    #[test]
    fn with_high_ns_keeps_two_ns_bins() {
        let bounds = LatencyBounds::date2010().with_high_ns(500.0);
        assert_eq!(bounds.bins, 250);
        assert_eq!(bounds.histogram().bin_edges(0), (0.0, 2.0));
    }

    #[test]
    fn aggregate_respects_custom_bounds() {
        let bounds = LatencyBounds::date2010().with_high_ns(400.0);
        let mut a = BankTelemetry::with_bounds(&bounds);
        a.record_read_latency(Seconds::from_nano(300.0));
        let telemetry = Telemetry {
            banks: vec![a.clone(), BankTelemetry::with_bounds(&bounds)],
            audit_corrupted_bits: 0,
        };
        let total = telemetry.aggregate();
        assert_eq!(total.read_latency_hist.overflow(), 0);
        assert_eq!(total.read_latency_hist.total(), 1);
    }

    #[test]
    fn queue_telemetry_quantiles_and_merge() {
        let mut exact = SojournStats::exact();
        for x in [10.0, 20.0, 30.0, 40.0] {
            exact.observe(x);
        }
        let mut q = QueueTelemetry {
            completed: 4,
            sojourn: exact,
            depth_time_ns: 50.0,
            horizon_ns: 100.0,
            max_depth: 3,
            ..QueueTelemetry::default()
        };
        assert!((q.sojourn_p50() - 25.0).abs() < 1e-12);
        assert!((q.mean_depth() - 0.5).abs() < 1e-12);
        let mut one = SojournStats::exact();
        one.observe(100.0);
        let other = QueueTelemetry {
            completed: 1,
            sojourn: one,
            depth_time_ns: 10.0,
            horizon_ns: 100.0,
            max_depth: 5,
            ..QueueTelemetry::default()
        };
        q.merge(&other);
        assert_eq!(q.completed, 5);
        assert_eq!(q.max_depth, 5);
        assert_eq!(q.sojourn.count(), 5);
        assert!((q.mean_depth() - 0.3).abs() < 1e-12);
        assert_eq!(QueueTelemetry::default().sojourn_quantile(0.99), None);
        assert_eq!(QueueTelemetry::default().sojourn_p99(), 0.0);
    }

    #[test]
    fn streaming_sojourn_matches_exact_on_small_streams() {
        // Below five samples the P² warm-up phase is exact, so streaming and
        // exact modes agree to the bit.
        let mut streaming = SojournStats::streaming();
        let mut exact = SojournStats::exact();
        for x in [30.0, 10.0, 20.0] {
            streaming.observe(x);
            exact.observe(x);
        }
        assert_eq!(streaming.quantile(0.5), exact.quantile(0.5));
        assert_eq!(streaming.count(), exact.count());
    }

    #[test]
    fn mixed_mode_sojourn_merge_degrades_to_streaming() {
        let mut streaming = SojournStats::streaming();
        streaming.observe(50.0);
        let mut exact = SojournStats::exact();
        exact.observe(10.0);
        exact.observe(90.0);

        let mut a = streaming.clone();
        a.merge(&exact);
        assert!(matches!(a, SojournStats::Streaming { .. }));
        assert_eq!(a.count(), 3);

        let mut b = exact.clone();
        b.merge(&streaming);
        assert!(matches!(b, SojournStats::Streaming { .. }));
        assert_eq!(b.count(), 3);
        // Same multiset, same warm-up exactness → same median.
        assert_eq!(a.quantile(0.5), Some(50.0));
    }

    #[test]
    fn rollup_by_merges_per_key_in_key_order() {
        let banks = [
            (1usize, telemetry_with(5, 1)),
            (0, telemetry_with(2, 0)),
            (1, telemetry_with(3, 1)),
        ];
        let levels = rollup_by(banks.iter().map(|(k, t)| (*k, t)));
        assert_eq!(levels.len(), 2);
        assert_eq!(levels[&0].reads, 2);
        assert_eq!(levels[&1].reads, 8);
        assert_eq!(levels[&1].misreads, 2);
        assert_eq!(levels[&1].read_latency_ns.len(), 8);
    }

    #[test]
    fn channel_telemetry_merges_and_averages() {
        let mut a = ChannelTelemetry {
            issued: 10,
            completed: 10,
            source_throttled: 2,
            max_outstanding: 4,
            bus_wait_ns: 50.0,
            bus_busy_ns: 60.0,
            horizon_ns: 100.0,
        };
        assert!((a.mean_bus_wait_ns() - 5.0).abs() < 1e-12);
        let b = ChannelTelemetry {
            issued: 5,
            completed: 5,
            max_outstanding: 7,
            ..ChannelTelemetry::default()
        };
        a.merge(&b);
        assert_eq!(a.issued, 15);
        assert_eq!(a.max_outstanding, 7);
        assert_eq!(ChannelTelemetry::default().mean_bus_wait_ns(), 0.0);
    }

    #[test]
    fn ecc_gauges_handle_empty_and_filled() {
        let mut ecc = EccTelemetry::default();
        assert_eq!(ecc.scrub_coverage(), 0.0);
        assert_eq!(ecc.hazard_rate(), 0.0);
        ecc.clean_reads = 90;
        ecc.corrected_ce = 6;
        ecc.detected_ue = 3;
        ecc.silent_errors = 1;
        ecc.words_total = 256;
        ecc.scrub_words_scanned = 512;
        assert!((ecc.hazard_rate() - 0.04).abs() < 1e-12);
        assert!((ecc.scrub_coverage() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ecc_error_log_caps_and_merge_counts_drops() {
        let mut a = EccTelemetry::default();
        for word in 0..ERROR_LOG_CAP + 5 {
            a.log_event(word, EccEventKind::DemandCe);
        }
        assert_eq!(a.error_log.len(), ERROR_LOG_CAP);
        assert_eq!(a.error_log_dropped, 5);
        let mut b = EccTelemetry::default();
        b.log_event(7, EccEventKind::ScrubUe);
        a.merge(&b);
        assert_eq!(a.error_log.len(), ERROR_LOG_CAP);
        assert_eq!(a.error_log_dropped, 6, "merge must count the overflow");
        let mut c = EccTelemetry::default();
        c.merge(&b);
        assert_eq!(c.error_log, b.error_log);
        assert_eq!(c.error_log_dropped, 0);
    }
}
