//! Slab arena: stable `u32` keys over a flat `Vec` with a free list.
//!
//! The queueing layer parks every admitted transaction in one of these
//! instead of shifting `Queued` structs around a `Vec`: inserts reuse freed
//! slots (LIFO free list), removals are O(1), and once the backing `Vec`
//! has grown to the queue's high-water mark the slab never allocates again
//! — which is what makes the frontend's steady-state loop allocation-free.

/// A slot map with `u32` keys and a LIFO free list.
#[derive(Debug, Clone)]
pub(crate) struct Slab<T> {
    entries: Vec<Entry<T>>,
    /// Head of the free list, or `NONE`.
    free: u32,
}

#[derive(Debug, Clone)]
enum Entry<T> {
    Occupied(T),
    /// Next free slot, or `NONE` at the list tail.
    Free(u32),
}

const NONE: u32 = u32::MAX;

impl<T> Slab<T> {
    /// An empty slab with `capacity` slots preallocated (`0` defers
    /// allocation to the first insert).
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        Self {
            entries: Vec::with_capacity(capacity),
            free: NONE,
        }
    }

    /// Stores `value`, reusing a freed slot when one exists.
    pub(crate) fn insert(&mut self, value: T) -> u32 {
        if self.free == NONE {
            let key = u32::try_from(self.entries.len()).expect("slab capacity exceeds u32 keys");
            self.entries.push(Entry::Occupied(value));
            return key;
        }
        let key = self.free;
        let slot = &mut self.entries[key as usize];
        match *slot {
            Entry::Free(next) => self.free = next,
            Entry::Occupied(_) => unreachable!("free list points at an occupied slot"),
        }
        *slot = Entry::Occupied(value);
        key
    }

    /// Removes and returns the value under `key`, freeing the slot.
    ///
    /// # Panics
    /// Panics when `key` does not name an occupied slot.
    pub(crate) fn remove(&mut self, key: u32) -> T {
        let slot = &mut self.entries[key as usize];
        match std::mem::replace(slot, Entry::Free(self.free)) {
            Entry::Occupied(value) => {
                self.free = key;
                value
            }
            Entry::Free(next) => {
                // Undo the replace so the free list stays intact, then panic.
                *slot = Entry::Free(next);
                panic!("slab key {key} is not occupied");
            }
        }
    }

    /// Borrows the value under `key`.
    ///
    /// # Panics
    /// Panics when `key` does not name an occupied slot.
    pub(crate) fn get(&self, key: u32) -> &T {
        match &self.entries[key as usize] {
            Entry::Occupied(value) => value,
            Entry::Free(_) => panic!("slab key {key} is not occupied"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_reuses_slots() {
        let mut slab = Slab::with_capacity(0);
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.entries.len(), 2);
        assert_eq!(*slab.get(a), "a");
        assert_eq!(slab.remove(a), "a");
        // The freed slot is reused before the vec grows.
        let c = slab.insert("c");
        assert_eq!(c, a);
        assert_eq!(slab.entries.len(), 2);
        assert_eq!(*slab.get(b), "b");
        assert_eq!(*slab.get(c), "c");
    }

    #[test]
    fn preallocated_slab_does_not_regrow_within_capacity() {
        let mut slab = Slab::with_capacity(8);
        let cap = slab.entries.capacity();
        let keys: Vec<u32> = (0..8).map(|i| slab.insert(i)).collect();
        for &k in &keys {
            slab.remove(k);
        }
        for i in 0..8 {
            slab.insert(i);
        }
        assert_eq!(slab.entries.capacity(), cap);
    }

    #[test]
    #[should_panic(expected = "not occupied")]
    fn double_remove_panics() {
        let mut slab = Slab::with_capacity(0);
        let k = slab.insert(1);
        slab.remove(k);
        slab.remove(k);
    }
}
