//! Bounded per-bank transaction queues with per-address ordering.
//!
//! Each bank owns one [`BankQueue`] of admitted-but-not-yet-served
//! transactions. Scheduling policies may serve the queue out of order, but
//! never reorder two transactions that touch the **same cell**: a read must
//! observe the writes admitted before it, and two writes must land in
//! admission order, or replay stops being meaningful. The queue encodes
//! that rule once — [`BankQueue::eligible`] yields exactly the entries a
//! policy may legally pick — so every policy inherits it for free.

use crate::telemetry::QueueTelemetry;
use crate::txn::Transaction;

/// One admitted transaction waiting in a bank queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Queued {
    /// The transaction itself.
    pub txn: Transaction,
    /// Its index in the original trace (stable identity for tests/logs).
    pub trace_index: usize,
    /// Original arrival timestamp (nanoseconds) — the clock sojourn time is
    /// measured from, even when admission stalled or retried.
    pub arrival_ns: f64,
    /// When the transaction entered this queue (nanoseconds).
    pub admit_ns: f64,
}

/// A bounded FIFO of waiting transactions for one bank.
#[derive(Debug, Clone)]
pub struct BankQueue {
    entries: Vec<Queued>,
    capacity: usize,
    /// Write-drain hysteresis flag for the read-priority policy: set when
    /// queued writes reach the high-water mark, cleared when they drain to
    /// zero.
    pub(crate) draining: bool,
}

impl BankQueue {
    /// An empty queue holding at most `capacity` waiting transactions
    /// (`usize::MAX` for effectively unbounded).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-depth queue cannot absorb any
    /// burst and every admission would backpressure.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity > 0,
            "bank queues need capacity for at least one entry"
        );
        Self {
            entries: Vec::new(),
            capacity,
            draining: false,
        }
    }

    /// Number of waiting transactions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is waiting.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` when the queue cannot admit another transaction.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Waiting transactions, in admission order.
    #[must_use]
    pub fn entries(&self) -> &[Queued] {
        &self.entries
    }

    /// Number of waiting writes.
    #[must_use]
    pub fn queued_writes(&self) -> usize {
        self.entries.iter().filter(|q| !q.txn.op.is_read()).count()
    }

    /// Admits a transaction at the tail.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full — backpressure is the frontend's job;
    /// by the time an entry reaches the queue the decision is already made.
    pub fn admit(&mut self, queued: Queued) {
        assert!(!self.is_full(), "admit() on a full queue");
        self.entries.push(queued);
    }

    /// Indices of entries a policy may legally serve next: an entry is
    /// eligible iff no *earlier-admitted* entry targets the same address.
    /// The head of the queue is therefore always eligible.
    pub fn eligible(&self) -> impl Iterator<Item = usize> + '_ {
        self.entries.iter().enumerate().filter_map(|(i, q)| {
            let blocked = self.entries[..i].iter().any(|p| p.txn.addr == q.txn.addr);
            (!blocked).then_some(i)
        })
    }

    /// Removes and returns the entry at `index`, preserving the relative
    /// order of the rest.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn take(&mut self, index: usize) -> Queued {
        self.entries.remove(index)
    }
}

/// A transaction currently occupying a bank's service stage.
#[derive(Debug, Clone, Copy)]
pub(crate) struct InService {
    pub(crate) queued: Queued,
    pub(crate) start_ns: f64,
}

/// Per-bank run state shared by the scheduler frontend and the hierarchy
/// chip engine: the waiting queue, the in-flight transaction and this run's
/// queueing counters. The frontend keys lanes by bank index in a flat
/// controller; the chip engine materialises them lazily per touched bank —
/// the bookkeeping is identical either way, so it lives here once.
pub(crate) struct Lane {
    pub(crate) queue: BankQueue,
    pub(crate) in_service: Option<InService>,
    /// A word-scrub occupies the service stage (mutually exclusive with
    /// `in_service`; scrub is non-preemptive once started).
    pub(crate) scrub_busy: bool,
    pub(crate) last_change_ns: f64,
    pub(crate) stats: QueueTelemetry,
}

impl Lane {
    pub(crate) fn new(queue_depth: usize) -> Self {
        Self {
            queue: BankQueue::new(queue_depth),
            in_service: None,
            scrub_busy: false,
            last_change_ns: 0.0,
            stats: QueueTelemetry::default(),
        }
    }

    /// Accumulates the depth integral up to `now` (call before any queue
    /// length change).
    pub(crate) fn flush_occupancy(&mut self, now: f64) {
        self.stats.depth_time_ns += self.queue.len() as f64 * (now - self.last_change_ns);
        self.last_change_ns = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stt_array::Address;

    fn queued(trace_index: usize, txn: Transaction) -> Queued {
        Queued {
            txn,
            trace_index,
            arrival_ns: trace_index as f64,
            admit_ns: trace_index as f64,
        }
    }

    #[test]
    fn capacity_is_enforced() {
        let mut queue = BankQueue::new(2);
        queue.admit(queued(0, Transaction::read(0, Address::new(0, 0))));
        assert!(!queue.is_full());
        queue.admit(queued(1, Transaction::read(0, Address::new(0, 1))));
        assert!(queue.is_full());
        assert_eq!(queue.len(), 2);
    }

    #[test]
    #[should_panic(expected = "full queue")]
    fn admitting_past_capacity_panics() {
        let mut queue = BankQueue::new(1);
        queue.admit(queued(0, Transaction::read(0, Address::new(0, 0))));
        queue.admit(queued(1, Transaction::read(0, Address::new(0, 1))));
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_is_rejected() {
        let _ = BankQueue::new(0);
    }

    #[test]
    fn same_address_entries_are_ineligible_behind_their_elder() {
        let hot = Address::new(1, 1);
        let mut queue = BankQueue::new(8);
        queue.admit(queued(0, Transaction::write(0, hot, true)));
        queue.admit(queued(1, Transaction::read(0, Address::new(2, 2))));
        queue.admit(queued(2, Transaction::read(0, hot)));
        queue.admit(queued(3, Transaction::read(0, Address::new(3, 3))));
        let eligible: Vec<usize> = queue.eligible().collect();
        // Entry 2 reads the cell entry 0 is still waiting to write.
        assert_eq!(eligible, vec![0, 1, 3]);
    }

    #[test]
    fn taking_an_entry_unblocks_its_successor() {
        let hot = Address::new(1, 1);
        let mut queue = BankQueue::new(8);
        queue.admit(queued(0, Transaction::write(0, hot, true)));
        queue.admit(queued(1, Transaction::read(0, hot)));
        let first = queue.take(0);
        assert_eq!(first.trace_index, 0);
        let eligible: Vec<usize> = queue.eligible().collect();
        assert_eq!(eligible, vec![0]);
        assert_eq!(queue.entries()[0].trace_index, 1);
    }

    #[test]
    fn queued_writes_counts_only_writes() {
        let mut queue = BankQueue::new(8);
        queue.admit(queued(0, Transaction::write(0, Address::new(0, 0), true)));
        queue.admit(queued(1, Transaction::read(0, Address::new(0, 1))));
        queue.admit(queued(2, Transaction::write(0, Address::new(0, 2), false)));
        assert_eq!(queue.queued_writes(), 2);
    }
}
