//! Bounded per-bank transaction queues with per-address ordering.
//!
//! Each bank owns one [`BankQueue`] of admitted-but-not-yet-served
//! transactions. Scheduling policies may serve the queue out of order, but
//! never reorder two transactions that touch the **same cell**: a read must
//! observe the writes admitted before it, and two writes must land in
//! admission order, or replay stops being meaningful. The queue encodes
//! that rule once — [`BankQueue::eligible`] yields exactly the entries a
//! policy may legally pick — so every policy inherits it for free.
//!
//! Storage is arena-backed (DESIGN.md §12): entries live in a
//! `Slab` (`sched::arena`) under stable `u32` keys and the FIFO is a
//! ring of keys, so admitting moves one 64-byte struct into a reused slot,
//! serving the head is an O(1) ring pop, and — after the preallocation the
//! frontend requests via [`BankQueue::with_capacity_hint`] — the steady
//! state allocates nothing.

use std::collections::VecDeque;

use crate::sched::arena::Slab;
use crate::telemetry::QueueTelemetry;
use crate::txn::Transaction;

/// One admitted transaction waiting in a bank queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Queued {
    /// The transaction itself.
    pub txn: Transaction,
    /// Its index in the original trace (stable identity for tests/logs).
    pub trace_index: usize,
    /// Original arrival timestamp (nanoseconds) — the clock sojourn time is
    /// measured from, even when admission stalled or retried.
    pub arrival_ns: f64,
    /// When the transaction entered this queue (nanoseconds).
    pub admit_ns: f64,
}

/// A bounded FIFO of waiting transactions for one bank.
#[derive(Debug, Clone)]
pub struct BankQueue {
    /// Entry storage; freed slots are reused LIFO.
    slab: Slab<Queued>,
    /// Admission-order ring of slab keys.
    order: VecDeque<u32>,
    capacity: usize,
    /// Write-drain hysteresis flag for the read-priority policy: set when
    /// queued writes reach the high-water mark, cleared when they drain to
    /// zero.
    pub(crate) draining: bool,
}

impl BankQueue {
    /// An empty queue holding at most `capacity` waiting transactions
    /// (`usize::MAX` for effectively unbounded).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-depth queue cannot absorb any
    /// burst and every admission would backpressure.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self::with_capacity_hint(capacity, 0)
    }

    /// Like [`BankQueue::new`], but preallocates `hint` slots so a run whose
    /// queue never exceeds that depth performs no allocation after setup.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_capacity_hint(capacity: usize, hint: usize) -> Self {
        assert!(
            capacity > 0,
            "bank queues need capacity for at least one entry"
        );
        Self {
            slab: Slab::with_capacity(hint),
            order: VecDeque::with_capacity(hint),
            capacity,
            draining: false,
        }
    }

    /// Number of waiting transactions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` when nothing is waiting.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// `true` when the queue cannot admit another transaction.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.order.len() >= self.capacity
    }

    /// The waiting transaction at queue position `index` (admission order;
    /// position 0 is the head).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[must_use]
    pub fn entry(&self, index: usize) -> &Queued {
        self.slab.get(self.order[index])
    }

    /// Iterates the waiting transactions in admission order.
    pub fn iter(&self) -> impl Iterator<Item = &Queued> + '_ {
        self.order.iter().map(|&key| self.slab.get(key))
    }

    /// Number of waiting writes.
    #[must_use]
    pub fn queued_writes(&self) -> usize {
        self.iter().filter(|q| !q.txn.op.is_read()).count()
    }

    /// Admits a transaction at the tail.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full — backpressure is the frontend's job;
    /// by the time an entry reaches the queue the decision is already made.
    pub fn admit(&mut self, queued: Queued) {
        assert!(!self.is_full(), "admit() on a full queue");
        let key = self.slab.insert(queued);
        self.order.push_back(key);
    }

    /// Indices of entries a policy may legally serve next: an entry is
    /// eligible iff no *earlier-admitted* entry targets the same address.
    /// The head of the queue is therefore always eligible.
    pub fn eligible(&self) -> impl Iterator<Item = usize> + '_ {
        self.order.iter().enumerate().filter_map(move |(i, &key)| {
            let addr = self.slab.get(key).txn.addr;
            let blocked = self
                .order
                .iter()
                .take(i)
                .any(|&p| self.slab.get(p).txn.addr == addr);
            (!blocked).then_some(i)
        })
    }

    /// Removes and returns the entry at queue position `index`, preserving
    /// the relative order of the rest. Position 0 (the FCFS head) is O(1).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn take(&mut self, index: usize) -> Queued {
        let key = if index == 0 {
            self.order.pop_front().expect("take(0) on an empty queue")
        } else {
            self.order.remove(index).expect("queue position in bounds")
        };
        self.slab.remove(key)
    }
}

/// A transaction currently occupying a bank's service stage.
#[derive(Debug, Clone, Copy)]
pub(crate) struct InService {
    pub(crate) queued: Queued,
    pub(crate) start_ns: f64,
}

/// A transaction parked by [`Backpressure::Retry`](super::Backpressure)
/// after its poll found the queue full: it waits off-queue (FIFO per lane)
/// until a slot frees, then re-enters on its original polling grid. See
/// DESIGN.md §12 — parking replaces the old poll-event churn, with the
/// skipped polls reconstructed arithmetically.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ParkedRetry {
    pub(crate) trace_index: u32,
    /// The next instant on the transaction's `delay_ns` polling grid.
    pub(crate) next_poll_ns: f64,
}

/// Per-bank run state shared by the scheduler frontend and the hierarchy
/// chip engine: the waiting queue, the in-flight transaction and this run's
/// queueing counters. The frontend keys lanes by bank index in a flat
/// controller; the chip engine materialises them lazily per touched bank —
/// the bookkeeping is identical either way, so it lives here once.
pub(crate) struct Lane {
    pub(crate) queue: BankQueue,
    pub(crate) in_service: Option<InService>,
    /// A word-scrub occupies the service stage (mutually exclusive with
    /// `in_service`; scrub is non-preemptive once started).
    pub(crate) scrub_busy: bool,
    /// A March-test operation occupies the service stage (mutually
    /// exclusive with both of the above; test ops are non-preemptive too).
    pub(crate) march_busy: bool,
    /// A calibration burst occupies the service stage (mutually exclusive
    /// with all of the above; a burst is non-preemptive once tripped).
    pub(crate) calib_busy: bool,
    pub(crate) last_change_ns: f64,
    pub(crate) stats: QueueTelemetry,
    /// Retry-backpressure waitlist (empty except under `Retry`).
    pub(crate) parked: VecDeque<ParkedRetry>,
}

impl Lane {
    pub(crate) fn new(queue_depth: usize) -> Self {
        Self::with_capacity_hint(queue_depth, 0)
    }

    pub(crate) fn with_capacity_hint(queue_depth: usize, hint: usize) -> Self {
        Self {
            queue: BankQueue::with_capacity_hint(queue_depth, hint),
            in_service: None,
            scrub_busy: false,
            march_busy: false,
            calib_busy: false,
            last_change_ns: 0.0,
            stats: QueueTelemetry::default(),
            parked: VecDeque::new(),
        }
    }

    /// Accumulates the depth integral up to `now` (call before any queue
    /// length change).
    pub(crate) fn flush_occupancy(&mut self, now: f64) {
        self.stats.depth_time_ns += self.queue.len() as f64 * (now - self.last_change_ns);
        self.last_change_ns = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stt_array::Address;

    fn queued(trace_index: usize, txn: Transaction) -> Queued {
        Queued {
            txn,
            trace_index,
            arrival_ns: trace_index as f64,
            admit_ns: trace_index as f64,
        }
    }

    #[test]
    fn capacity_is_enforced() {
        let mut queue = BankQueue::new(2);
        queue.admit(queued(0, Transaction::read(0, Address::new(0, 0))));
        assert!(!queue.is_full());
        queue.admit(queued(1, Transaction::read(0, Address::new(0, 1))));
        assert!(queue.is_full());
        assert_eq!(queue.len(), 2);
    }

    #[test]
    #[should_panic(expected = "full queue")]
    fn admitting_past_capacity_panics() {
        let mut queue = BankQueue::new(1);
        queue.admit(queued(0, Transaction::read(0, Address::new(0, 0))));
        queue.admit(queued(1, Transaction::read(0, Address::new(0, 1))));
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_is_rejected() {
        let _ = BankQueue::new(0);
    }

    #[test]
    fn same_address_entries_are_ineligible_behind_their_elder() {
        let hot = Address::new(1, 1);
        let mut queue = BankQueue::new(8);
        queue.admit(queued(0, Transaction::write(0, hot, true)));
        queue.admit(queued(1, Transaction::read(0, Address::new(2, 2))));
        queue.admit(queued(2, Transaction::read(0, hot)));
        queue.admit(queued(3, Transaction::read(0, Address::new(3, 3))));
        let eligible: Vec<usize> = queue.eligible().collect();
        // Entry 2 reads the cell entry 0 is still waiting to write.
        assert_eq!(eligible, vec![0, 1, 3]);
    }

    #[test]
    fn taking_an_entry_unblocks_its_successor() {
        let hot = Address::new(1, 1);
        let mut queue = BankQueue::new(8);
        queue.admit(queued(0, Transaction::write(0, hot, true)));
        queue.admit(queued(1, Transaction::read(0, hot)));
        let first = queue.take(0);
        assert_eq!(first.trace_index, 0);
        let eligible: Vec<usize> = queue.eligible().collect();
        assert_eq!(eligible, vec![0]);
        assert_eq!(queue.entry(0).trace_index, 1);
    }

    #[test]
    fn take_from_the_middle_preserves_order() {
        let mut queue = BankQueue::new(8);
        for i in 0..4 {
            queue.admit(queued(i, Transaction::read(0, Address::new(i, 0))));
        }
        let mid = queue.take(2);
        assert_eq!(mid.trace_index, 2);
        let remaining: Vec<usize> = queue.iter().map(|q| q.trace_index).collect();
        assert_eq!(remaining, vec![0, 1, 3]);
        // Freed slot is reused: admitting again does not grow the arena.
        queue.admit(queued(9, Transaction::read(0, Address::new(9, 0))));
        assert_eq!(queue.entry(3).trace_index, 9);
    }

    #[test]
    fn queued_writes_counts_only_writes() {
        let mut queue = BankQueue::new(8);
        queue.admit(queued(0, Transaction::write(0, Address::new(0, 0), true)));
        queue.admit(queued(1, Transaction::read(0, Address::new(0, 1))));
        queue.admit(queued(2, Transaction::write(0, Address::new(0, 2), false)));
        assert_eq!(queue.queued_writes(), 2);
    }
}
