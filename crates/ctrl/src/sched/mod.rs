//! `sched` — the event-driven request scheduler frontend.
//!
//! [`Controller::run`](crate::Controller::run) replays a trace with zero
//! queueing: every transaction starts the instant its predecessor finishes.
//! That is the right tool for accuracy questions (disturbance, retries,
//! audits) but says nothing about *system-level* behaviour — what the
//! DATE 2010 paper's Table III argues about, where the destructive
//! self-reference scheme's restore-inflated read occupies a bank for 25 ns
//! against the nondestructive scheme's 14 ns and the difference compounds
//! into queueing delay under load.
//!
//! This module supplies the missing piece as a classic discrete-event
//! simulation:
//!
//! * [`EventQueue`] — a deterministic min-heap of timestamped events
//!   (insertion-order tie-breaking, NaN-free by construction).
//! * [`BankQueue`] — bounded per-bank admission queues that encode the
//!   per-address ordering rule every policy must obey.
//! * [`Policy`] — pluggable dispatch: FCFS, read-priority with write
//!   draining, oldest-first anti-starvation — plus the [`PriorityClass`]
//!   arbitration hook among demand, test and background traffic.
//! * [`Frontend`] — the engine tying them together over a
//!   [`Controller`](crate::Controller), with [`Backpressure`] (stall, drop,
//!   retry) when queues fill, an optional background scrub daemon
//!   ([`ScrubConfig`](crate::reliability::ScrubConfig)) that repairs
//!   correctable errors in lane-idle gaps, an optional March
//!   manufacturing-test source ([`MarchConfig`]) that drives
//!   [`march`](crate::march) programs through the banks between demand
//!   and scrub in priority, and queueing telemetry
//!   ([`QueueTelemetry`](crate::QueueTelemetry)) the serial replay path
//!   cannot measure.
//!
//! The frontend reuses [`Bank`](crate::Bank) as its service stage, so under
//! FCFS at unbounded depth it is *bit-identical* to serial replay — same
//! stored state, same audit counters — while additionally reporting sojourn
//! quantiles, occupancy and backpressure counts.

pub(crate) mod arena;
pub mod event;
pub mod frontend;
pub mod policy;
pub mod queue;

pub use event::EventQueue;
pub use frontend::{
    Backpressure, Completion, CompletionIter, CompletionLog, Frontend, FrontendConfig, MarchConfig,
    SchedRun,
};
pub use policy::{Policy, PriorityClass};
pub use queue::{BankQueue, Queued};
