//! A deterministic discrete-event queue.
//!
//! The scheduler frontend is a classic event-driven simulator: the only
//! things that happen are *arrivals* (a transaction is offered to a bank
//! queue) and *completions* (a bank finishes serving a transaction), and
//! each one is processed at an exact simulated timestamp. Determinism is
//! non-negotiable here — the whole `stt-ctrl` test strategy leans on
//! bit-identical replay — so the queue breaks timestamp ties by insertion
//! sequence number: two events at the same instant always pop in the order
//! they were scheduled, independent of heap internals or float quirks.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled entry: a timestamp, a tie-breaking sequence number and the
/// payload.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time_ns: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time_ns.total_cmp(&other.time_ns) == Ordering::Equal && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: `BinaryHeap` is a max-heap and we want the *earliest*
        // event (smallest time, then smallest sequence number) on top.
        other
            .time_ns
            .total_cmp(&self.time_ns)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-heap of timestamped events with deterministic tie-breaking.
///
/// # Examples
///
/// ```
/// use stt_ctrl::sched::EventQueue;
///
/// let mut queue = EventQueue::new();
/// queue.schedule(25.0, "late");
/// queue.schedule(10.0, "early");
/// queue.schedule(10.0, "early-but-second");
/// assert_eq!(queue.pop(), Some((10.0, "early")));
/// assert_eq!(queue.pop(), Some((10.0, "early-but-second")));
/// assert_eq!(queue.pop(), Some((25.0, "late")));
/// assert_eq!(queue.pop(), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
}

impl<E> EventQueue<E> {
    /// An empty event queue.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at `time_ns`.
    ///
    /// # Panics
    ///
    /// Panics if `time_ns` is NaN — a NaN timestamp would silently corrupt
    /// the heap order.
    pub fn schedule(&mut self, time_ns: f64, event: E) {
        assert!(!time_ns.is_nan(), "event timestamps must be numbers");
        self.heap.push(Scheduled {
            time_ns,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// The timestamp of the earliest pending event.
    #[must_use]
    pub fn next_time(&self) -> Option<f64> {
        self.heap.peek().map(|entry| entry.time_ns)
    }

    /// Removes and returns the earliest pending event (ties in scheduling
    /// order).
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|entry| (entry.time_ns, entry.event))
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut queue = EventQueue::new();
        for &t in &[5.0, 1.0, 3.0, 2.0, 4.0] {
            queue.schedule(t, t as u64);
        }
        let mut popped = Vec::new();
        while let Some((t, e)) = queue.pop() {
            assert_eq!(t as u64, e);
            popped.push(t);
        }
        assert_eq!(popped, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn ties_pop_in_scheduling_order() {
        let mut queue = EventQueue::new();
        for label in 0..100u64 {
            queue.schedule(7.0, label);
        }
        let order: Vec<u64> = std::iter::from_fn(|| queue.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn next_time_peeks_without_removing() {
        let mut queue = EventQueue::new();
        assert_eq!(queue.next_time(), None);
        queue.schedule(2.5, ());
        assert_eq!(queue.next_time(), Some(2.5));
        assert_eq!(queue.len(), 1);
        assert!(!queue.is_empty());
    }

    #[test]
    #[should_panic(expected = "timestamps must be numbers")]
    fn nan_timestamps_are_rejected() {
        EventQueue::new().schedule(f64::NAN, ());
    }
}
