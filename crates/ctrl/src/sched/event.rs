//! A deterministic discrete-event queue.
//!
//! The scheduler frontend is a classic event-driven simulator: the only
//! things that happen are *arrivals* (a transaction is offered to a bank
//! queue) and *completions* (a bank finishes serving a transaction), and
//! each one is processed at an exact simulated timestamp. Determinism is
//! non-negotiable here — the whole `stt-ctrl` test strategy leans on
//! bit-identical replay — so the queue breaks timestamp ties by insertion
//! sequence number: two events at the same instant always pop in the order
//! they were scheduled, independent of heap internals or float quirks.
//!
//! Storage is index-based: entries live in one flat `Vec` used as an
//! implicit binary min-heap (parent/child navigation is index arithmetic,
//! sift operations swap in place), so there is no per-event box and — once
//! the frontend has reserved the run's worst-case event count up front —
//! scheduling and popping never allocate.

use std::cmp::Ordering;

/// One scheduled entry: a timestamp, a tie-breaking sequence number and the
/// payload.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time_ns: f64,
    seq: u64,
    event: E,
}

impl<E> Scheduled<E> {
    /// Min-heap priority: earliest timestamp first, ties by insertion order.
    fn before(&self, other: &Self) -> bool {
        match self.time_ns.total_cmp(&other.time_ns) {
            Ordering::Less => true,
            Ordering::Greater => false,
            Ordering::Equal => self.seq < other.seq,
        }
    }
}

/// A min-heap of timestamped events with deterministic tie-breaking.
///
/// # Examples
///
/// ```
/// use stt_ctrl::sched::EventQueue;
///
/// let mut queue = EventQueue::new();
/// queue.schedule(25.0, "late");
/// queue.schedule(10.0, "early");
/// queue.schedule(10.0, "early-but-second");
/// assert_eq!(queue.pop(), Some((10.0, "early")));
/// assert_eq!(queue.pop(), Some((10.0, "early-but-second")));
/// assert_eq!(queue.pop(), Some((25.0, "late")));
/// assert_eq!(queue.pop(), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventQueue<E> {
    /// Implicit binary heap: `heap[0]` is the earliest event, children of
    /// index `i` sit at `2i + 1` and `2i + 2`.
    heap: Vec<Scheduled<E>>,
    seq: u64,
}

impl<E> EventQueue<E> {
    /// An empty event queue.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: Vec::new(),
            seq: 0,
        }
    }

    /// An empty event queue with room for `capacity` pending events.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            heap: Vec::with_capacity(capacity),
            seq: 0,
        }
    }

    /// Reserves room for at least `additional` more pending events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Schedules `event` at `time_ns`.
    ///
    /// # Panics
    ///
    /// Panics if `time_ns` is NaN — a NaN timestamp would silently corrupt
    /// the heap order.
    pub fn schedule(&mut self, time_ns: f64, event: E) {
        assert!(!time_ns.is_nan(), "event timestamps must be numbers");
        self.heap.push(Scheduled {
            time_ns,
            seq: self.seq,
            event,
        });
        self.seq += 1;
        self.sift_up(self.heap.len() - 1);
    }

    /// The timestamp of the earliest pending event.
    #[must_use]
    pub fn next_time(&self) -> Option<f64> {
        self.heap.first().map(|entry| entry.time_ns)
    }

    /// Removes and returns the earliest pending event (ties in scheduling
    /// order).
    pub fn pop(&mut self) -> Option<(f64, E)> {
        if self.heap.is_empty() {
            return None;
        }
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        let entry = self.heap.pop().expect("heap checked non-empty");
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        Some((entry.time_ns, entry.event))
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i].before(&self.heap[parent]) {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let (left, right) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if left < n && self.heap[left].before(&self.heap[smallest]) {
                smallest = left;
            }
            if right < n && self.heap[right].before(&self.heap[smallest]) {
                smallest = right;
            }
            if smallest == i {
                break;
            }
            self.heap.swap(i, smallest);
            i = smallest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut queue = EventQueue::new();
        for &t in &[5.0, 1.0, 3.0, 2.0, 4.0] {
            queue.schedule(t, t as u64);
        }
        let mut popped = Vec::new();
        while let Some((t, e)) = queue.pop() {
            assert_eq!(t as u64, e);
            popped.push(t);
        }
        assert_eq!(popped, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn ties_pop_in_scheduling_order() {
        let mut queue = EventQueue::new();
        for label in 0..100u64 {
            queue.schedule(7.0, label);
        }
        let order: Vec<u64> = std::iter::from_fn(|| queue.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn next_time_peeks_without_removing() {
        let mut queue = EventQueue::new();
        assert_eq!(queue.next_time(), None);
        queue.schedule(2.5, ());
        assert_eq!(queue.next_time(), Some(2.5));
        assert_eq!(queue.len(), 1);
        assert!(!queue.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop_keeps_order() {
        let mut queue = EventQueue::with_capacity(8);
        queue.schedule(10.0, 10u64);
        queue.schedule(30.0, 30);
        assert_eq!(queue.pop(), Some((10.0, 10)));
        queue.schedule(20.0, 20);
        queue.schedule(5.0, 5);
        assert_eq!(queue.pop(), Some((5.0, 5)));
        assert_eq!(queue.pop(), Some((20.0, 20)));
        assert_eq!(queue.pop(), Some((30.0, 30)));
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn reserved_queue_does_not_regrow_within_capacity() {
        let mut queue = EventQueue::with_capacity(64);
        let cap = queue.heap.capacity();
        for round in 0..10 {
            for i in 0..64u64 {
                queue.schedule((i % 7) as f64, round * 64 + i);
            }
            while queue.pop().is_some() {}
        }
        assert_eq!(queue.heap.capacity(), cap);
    }

    #[test]
    #[should_panic(expected = "timestamps must be numbers")]
    fn nan_timestamps_are_rejected() {
        EventQueue::new().schedule(f64::NAN, ());
    }
}
