//! Scheduling policies: which waiting transaction a bank serves next.
//!
//! Every policy chooses among the queue's *eligible* entries (see
//! [`BankQueue::eligible`]), so per-address ordering is preserved no matter
//! how aggressive the reordering is. Three policies cover the classic
//! controller trade-offs:
//!
//! * [`Policy::Fcfs`] — strict admission order. With an unbounded queue
//!   this reproduces serial replay bit-for-bit (the frontend's anchor
//!   property).
//! * [`Policy::ReadPriority`] — reads jump ahead of writes, the standard
//!   latency play for read-mostly traffic; queued writes are *drained* in
//!   batch once they pile past a high-water mark (hysteresis: drain runs
//!   until the write queue empties), so writes cannot starve.
//! * [`Policy::OldestFirst`] — serve the eligible entry with the earliest
//!   *original arrival*. Under retrying admission a transaction can re-enter
//!   the queue long after it first arrived; oldest-first is the
//!   anti-starvation answer, bounding how far behind its peers a retried
//!   transaction can fall.

use serde::{Deserialize, Serialize};

use super::queue::BankQueue;

/// The traffic classes a bank lane arbitrates between.
///
/// Demand traffic is the host's reads and writes; test traffic is the
/// March harness's lowered operations (see
/// [`MarchConfig`](crate::sched::MarchConfig)); background traffic is the
/// scrub daemon's word re-reads (see
/// [`ScrubConfig`](crate::reliability::ScrubConfig)). The ordering is
/// strict: every built-in [`Policy`] is work-conserving for demand, test
/// work runs in lane-idle gaps, and scrub runs only when neither demand
/// nor test work waits — an in-progress operation of any class finishes
/// (the service stage is not interruptible, like a real array access), but
/// no lower-class one starts while a higher class waits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PriorityClass {
    /// Host reads and writes.
    Demand,
    /// Manufacturing-test traffic (March operations).
    Test,
    /// Best-effort maintenance traffic (scrub).
    Background,
}

/// How a bank picks the next transaction to serve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Policy {
    /// First come, first served (admission order).
    Fcfs,
    /// Serve reads before writes; drain writes in batch above a high-water
    /// mark.
    ReadPriority {
        /// Queued-write count that triggers a write drain.
        write_high_water: usize,
    },
    /// Serve the eligible entry with the earliest original arrival time.
    OldestFirst,
}

impl Policy {
    /// Short machine-readable name for table/CSV rows.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Policy::Fcfs => "fcfs",
            Policy::ReadPriority { .. } => "read-priority",
            Policy::OldestFirst => "oldest-first",
        }
    }

    /// Which class an idle lane should serve next. Every built-in policy is
    /// work-conserving for demand: [`PriorityClass::Background`] is chosen
    /// only when no demand transaction is waiting. The hook is on `Policy`
    /// so a future policy can trade differently (e.g. guarantee scrub
    /// bandwidth under sustained load).
    #[must_use]
    pub fn arbitrate(&self, demand_waiting: bool) -> PriorityClass {
        if demand_waiting {
            PriorityClass::Demand
        } else {
            PriorityClass::Background
        }
    }

    /// Three-way arbitration among demand, March-test and scrub work:
    /// demand always wins, test work runs in demand-idle gaps, scrub only
    /// when the lane is otherwise idle. [`Policy::arbitrate`] remains the
    /// two-class view (test absent), so existing callers see identical
    /// behaviour.
    #[must_use]
    pub fn arbitrate3(&self, demand_waiting: bool, test_waiting: bool) -> PriorityClass {
        if demand_waiting {
            PriorityClass::Demand
        } else if test_waiting {
            PriorityClass::Test
        } else {
            PriorityClass::Background
        }
    }

    /// Picks the index of the queue entry to serve next, or `None` when the
    /// queue is empty. Always returns an *eligible* index.
    pub(crate) fn choose(&self, queue: &mut BankQueue) -> Option<usize> {
        if queue.is_empty() {
            return None;
        }
        match *self {
            // The head of the queue is always eligible.
            Policy::Fcfs => Some(0),
            Policy::OldestFirst => queue.eligible().min_by(|&a, &b| {
                let (qa, qb) = (queue.entry(a), queue.entry(b));
                qa.arrival_ns
                    .total_cmp(&qb.arrival_ns)
                    .then(qa.trace_index.cmp(&qb.trace_index))
            }),
            Policy::ReadPriority { write_high_water } => {
                let writes = queue.queued_writes();
                if writes >= write_high_water.max(1) {
                    queue.draining = true;
                } else if writes == 0 {
                    queue.draining = false;
                }
                let want_read = !queue.draining;
                queue
                    .eligible()
                    .find(|&i| queue.entry(i).txn.op.is_read() == want_read)
                    .or(Some(0))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::queue::Queued;
    use crate::txn::Transaction;
    use stt_array::Address;

    fn queued(trace_index: usize, arrival_ns: f64, txn: Transaction) -> Queued {
        Queued {
            txn,
            trace_index,
            arrival_ns,
            admit_ns: arrival_ns,
        }
    }

    fn queue_of(entries: Vec<Queued>) -> BankQueue {
        let mut queue = BankQueue::new(64);
        for entry in entries {
            queue.admit(entry);
        }
        queue
    }

    #[test]
    fn fcfs_serves_the_head() {
        let mut queue = queue_of(vec![
            queued(0, 0.0, Transaction::write(0, Address::new(0, 0), true)),
            queued(1, 1.0, Transaction::read(0, Address::new(0, 1))),
        ]);
        assert_eq!(Policy::Fcfs.choose(&mut queue), Some(0));
        assert_eq!(Policy::Fcfs.choose(&mut BankQueue::new(4)), None);
    }

    #[test]
    fn read_priority_jumps_reads_over_older_writes() {
        let mut queue = queue_of(vec![
            queued(0, 0.0, Transaction::write(0, Address::new(0, 0), true)),
            queued(1, 1.0, Transaction::read(0, Address::new(0, 1))),
        ]);
        let policy = Policy::ReadPriority {
            write_high_water: 8,
        };
        assert_eq!(policy.choose(&mut queue), Some(1));
    }

    #[test]
    fn read_priority_respects_same_address_ordering() {
        let hot = Address::new(0, 0);
        let mut queue = queue_of(vec![
            queued(0, 0.0, Transaction::write(0, hot, true)),
            queued(1, 1.0, Transaction::read(0, hot)),
        ]);
        let policy = Policy::ReadPriority {
            write_high_water: 8,
        };
        // The read targets the written cell, so the write must go first.
        assert_eq!(policy.choose(&mut queue), Some(0));
    }

    #[test]
    fn read_priority_drains_writes_above_high_water_until_empty() {
        let policy = Policy::ReadPriority {
            write_high_water: 2,
        };
        let mut queue = queue_of(vec![
            queued(0, 0.0, Transaction::write(0, Address::new(0, 0), true)),
            queued(1, 1.0, Transaction::read(0, Address::new(9, 9))),
            queued(2, 2.0, Transaction::write(0, Address::new(0, 1), false)),
        ]);
        // Two queued writes hit the mark: drain mode picks the oldest write.
        assert_eq!(policy.choose(&mut queue), Some(0));
        queue.take(0);
        // Hysteresis: still draining with one write left.
        assert_eq!(policy.choose(&mut queue), Some(1));
        queue.take(1);
        // Writes empty: back to read priority.
        assert!(policy.choose(&mut queue).is_some());
        assert!(!queue.draining);
    }

    #[test]
    fn oldest_first_picks_earliest_arrival_not_queue_position() {
        // A retried admission sits at the tail with an old arrival stamp.
        let mut queue = queue_of(vec![
            queued(5, 50.0, Transaction::read(0, Address::new(0, 0))),
            queued(6, 60.0, Transaction::read(0, Address::new(0, 1))),
            queued(1, 10.0, Transaction::read(0, Address::new(0, 2))),
        ]);
        assert_eq!(Policy::OldestFirst.choose(&mut queue), Some(2));
    }

    #[test]
    fn arbitration_is_demand_work_conserving() {
        for policy in [
            Policy::Fcfs,
            Policy::OldestFirst,
            Policy::ReadPriority {
                write_high_water: 4,
            },
        ] {
            assert_eq!(policy.arbitrate(true), PriorityClass::Demand);
            assert_eq!(policy.arbitrate(false), PriorityClass::Background);
        }
    }

    #[test]
    fn three_way_arbitration_is_strict() {
        let policy = Policy::Fcfs;
        assert_eq!(policy.arbitrate3(true, true), PriorityClass::Demand);
        assert_eq!(policy.arbitrate3(true, false), PriorityClass::Demand);
        assert_eq!(policy.arbitrate3(false, true), PriorityClass::Test);
        assert_eq!(policy.arbitrate3(false, false), PriorityClass::Background);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Policy::Fcfs.name(), "fcfs");
        assert_eq!(
            Policy::ReadPriority {
                write_high_water: 4
            }
            .name(),
            "read-priority"
        );
        assert_eq!(Policy::OldestFirst.name(), "oldest-first");
    }
}
