//! The event-driven request frontend: admission, queueing, dispatch.
//!
//! [`Frontend`] wraps a [`Controller`] and replaces its zero-queueing
//! serial replay with a discrete-event loop: transactions are *offered* at
//! their arrival timestamps, admitted into bounded per-bank queues (or
//! backpressured when full), dispatched by a scheduling [`Policy`], and
//! completed out of order across banks while per-address ordering is
//! preserved within each bank. The service stage is the exact same
//! [`Bank`] logic serial replay uses — the frontend only
//! decides *when* and *in which order* `Bank::execute` runs — which is what
//! makes the anchor property hold:
//!
//! > For the same seed and a trace with non-decreasing arrivals, FCFS
//! > dispatch at unbounded queue depth executes the exact per-bank
//! > instruction-and-RNG sequence of [`Controller::run`], so final stored
//! > state and audit counters are **bit-identical** — only the queueing
//! > telemetry (which serial replay cannot measure) differs from zero.
//!
//! That identity is asserted by the integration suite the same way the
//! `Serial ≡ Parallel` dispatch property already is.

use serde::{Deserialize, Serialize};

use crate::bank::Bank;
use crate::engine::Controller;
use crate::faults::FaultPlan;
use crate::reliability::ScrubConfig;
use crate::telemetry::{QueueTelemetry, Telemetry};
use crate::txn::{Op, Trace, Transaction};

use super::event::EventQueue;
use super::policy::{Policy, PriorityClass};
use super::queue::{InService, Lane, Queued};

/// What admission does when a transaction's bank queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Backpressure {
    /// Block the arrival stream until the queue frees a slot (a blocking
    /// host interface: later arrivals are pushed back in time too).
    Stall,
    /// Discard the transaction and count it in the telemetry.
    Drop,
    /// Re-offer the transaction after a fixed delay (a polling host);
    /// later arrivals are *not* blocked behind it.
    Retry {
        /// How long the caller waits before re-offering (nanoseconds).
        delay_ns: f64,
    },
}

/// Configuration of the scheduler frontend.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrontendConfig {
    /// Per-bank waiting-queue capacity (`usize::MAX` for unbounded).
    pub queue_depth: usize,
    /// Dispatch policy.
    pub policy: Policy,
    /// What to do when a bank queue is full.
    pub backpressure: Backpressure,
    /// Background scrub daemon (see [`ScrubConfig`]): a
    /// [`PriorityClass::Background`] traffic source offering one word-scrub
    /// per bank per interval, served only in lane-idle gaps. Requires the
    /// wrapped controller to run with ECC.
    #[serde(default)]
    pub scrub: Option<ScrubConfig>,
}

impl FrontendConfig {
    /// FCFS at unbounded depth — the configuration under which the frontend
    /// reproduces serial replay bit-for-bit (backpressure can never fire).
    #[must_use]
    pub fn fcfs_unbounded() -> Self {
        Self {
            queue_depth: usize::MAX,
            policy: Policy::Fcfs,
            backpressure: Backpressure::Stall,
            scrub: None,
        }
    }

    /// Enables the background scrub daemon.
    #[must_use]
    pub fn with_scrub(mut self, scrub: ScrubConfig) -> Self {
        self.scrub = Some(scrub);
        self
    }

    /// Overrides the dispatch policy.
    #[must_use]
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the per-bank queue depth.
    #[must_use]
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth;
        self
    }

    /// Overrides the backpressure behaviour.
    #[must_use]
    pub fn with_backpressure(mut self, backpressure: Backpressure) -> Self {
        self.backpressure = backpressure;
        self
    }

    fn validate(&self) {
        assert!(
            self.queue_depth > 0,
            "queue depth must be at least 1 (got 0)"
        );
        if let Backpressure::Retry { delay_ns } = self.backpressure {
            assert!(
                delay_ns.is_finite() && delay_ns > 0.0,
                "retry delay must be positive, got {delay_ns}"
            );
        }
        if let Some(scrub) = self.scrub {
            assert!(
                scrub.interval_ns.is_finite() && scrub.interval_ns > 0.0,
                "scrub interval must be positive, got {}",
                scrub.interval_ns
            );
        }
    }
}

impl Default for FrontendConfig {
    fn default() -> Self {
        Self::fcfs_unbounded()
    }
}

/// One served transaction, as observed at the frontend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// Index of the transaction in the offered trace.
    pub trace_index: usize,
    /// Bank that served it.
    pub bank: usize,
    /// The operation.
    pub op: Op,
    /// Original arrival timestamp (nanoseconds).
    pub arrival_ns: f64,
    /// When it entered the bank queue (≥ arrival under stalls/retries).
    pub admit_ns: f64,
    /// When the bank started serving it.
    pub start_ns: f64,
    /// When service finished.
    pub complete_ns: f64,
}

impl Completion {
    /// Arrival-to-completion time — what a host actually waits.
    #[must_use]
    pub fn sojourn_ns(&self) -> f64 {
        self.complete_ns - self.arrival_ns
    }

    /// Admission-to-service waiting time.
    #[must_use]
    pub fn wait_ns(&self) -> f64 {
        self.start_ns - self.admit_ns
    }

    /// Pure service time.
    #[must_use]
    pub fn service_ns(&self) -> f64 {
        self.complete_ns - self.start_ns
    }
}

/// The outcome of one [`Frontend::run`]: telemetry (with the queueing
/// section filled in), the per-transaction completion log in completion
/// order, and the run's makespan.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedRun {
    /// Controller telemetry with [`QueueTelemetry`] populated per bank.
    pub telemetry: Telemetry,
    /// Every served transaction, in completion order (deterministic).
    pub completions: Vec<Completion>,
    /// Time of the last completion (nanoseconds); 0 for an empty trace.
    pub makespan_ns: f64,
}

impl SchedRun {
    /// Achieved throughput in transactions per second (0 for an empty run).
    #[must_use]
    pub fn ops_per_second(&self) -> f64 {
        if self.makespan_ns > 0.0 {
            self.completions.len() as f64 / (self.makespan_ns * 1e-9)
        } else {
            0.0
        }
    }
}

/// What the event loop reacts to.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// A transaction is offered to its bank (fresh from the trace, or a
    /// re-offer under [`Backpressure::Retry`]).
    Arrive { trace_index: usize, fresh: bool },
    /// A bank finished serving its in-flight transaction.
    Complete { bank: usize },
    /// The scrub daemon's periodic tick: offer one word-scrub to `bank`.
    /// Served only when the lane is idle and the policy arbitrates
    /// [`PriorityClass::Background`]; deferred (and counted) otherwise.
    Scrub { bank: usize },
    /// A bank finished an in-flight word-scrub.
    ScrubComplete { bank: usize },
}

/// An admission blocked on a full queue under [`Backpressure::Stall`].
#[derive(Debug, Clone, Copy)]
struct StalledAdmission {
    trace_index: usize,
    /// When the blocked offer was made (stall time accrues from here).
    offered_ns: f64,
}

/// The event-driven scheduler frontend over a [`Controller`].
///
/// State persists across [`Frontend::run`] calls exactly like
/// [`Controller::run`]: cell arrays, RNG streams and telemetry accumulate,
/// so a trace can be offered in chunks.
///
/// # Examples
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use stt_ctrl::sched::{Frontend, FrontendConfig, Policy};
/// use stt_ctrl::{Controller, ControllerConfig, Workload};
/// use stt_sense::SchemeKind;
///
/// let config = ControllerConfig::small(SchemeKind::Nondestructive, 2);
/// let trace = Workload::ReadMostly
///     .generate(config.footprint(), 200, &mut StdRng::seed_from_u64(7))
///     .with_poisson_arrivals(20.0, &mut StdRng::seed_from_u64(8));
/// let mut frontend = Frontend::new(
///     Controller::new(config),
///     FrontendConfig::fcfs_unbounded().with_policy(Policy::ReadPriority {
///         write_high_water: 8,
///     }),
/// );
/// let run = frontend.run(&trace);
/// assert_eq!(run.completions.len(), 200);
/// let queue = run.telemetry.aggregate().queue;
/// assert_eq!(queue.completed, 200);
/// assert!(queue.sojourn_p99() >= queue.sojourn_p50());
/// ```
pub struct Frontend {
    controller: Controller,
    config: FrontendConfig,
    /// Queueing telemetry accumulated across runs, one entry per bank.
    accumulated: Vec<QueueTelemetry>,
}

impl Frontend {
    /// Wraps `controller` with the scheduling frontend `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (zero queue depth,
    /// non-positive retry delay, non-positive scrub interval), or if scrub
    /// is enabled on a controller without ECC (scrub re-reads words through
    /// the codec; without check bits there is nothing to correct).
    #[must_use]
    pub fn new(controller: Controller, config: FrontendConfig) -> Self {
        config.validate();
        assert!(
            config.scrub.is_none() || controller.config().ecc.is_enabled(),
            "the scrub daemon requires ECC (see ControllerConfig::with_ecc)"
        );
        let banks = controller.config().banks;
        Self {
            controller,
            config,
            accumulated: vec![QueueTelemetry::default(); banks],
        }
    }

    /// The frontend configuration.
    #[must_use]
    pub fn config(&self) -> &FrontendConfig {
        &self.config
    }

    /// The wrapped controller (for state inspection: stored bits, audit).
    #[must_use]
    pub fn controller(&self) -> &Controller {
        &self.controller
    }

    /// Unwraps the controller, discarding the frontend.
    #[must_use]
    pub fn into_controller(self) -> Controller {
        self.controller
    }

    /// A telemetry snapshot with the queueing section filled in from the
    /// runs so far.
    #[must_use]
    pub fn telemetry(&self) -> Telemetry {
        let mut telemetry = self.controller.telemetry();
        for (bank, queue) in telemetry.banks.iter_mut().zip(&self.accumulated) {
            bank.queue = queue.clone();
        }
        telemetry
    }

    /// Offers every transaction of `trace` at its arrival time and runs the
    /// event loop to completion (all queues drained, all banks idle).
    ///
    /// The simulated clock restarts at zero for each call; accumulated
    /// telemetry (including queueing horizons) sums across calls.
    ///
    /// # Panics
    ///
    /// Panics if a transaction addresses a bank the controller does not
    /// have.
    pub fn run(&mut self, trace: &Trace) -> SchedRun {
        let FrontendConfig {
            queue_depth,
            policy,
            backpressure,
            scrub,
        } = self.config;
        let faults = self.controller.config().faults.clone();
        let bank_count = self.controller.config().banks;
        let txns = trace.transactions();
        for txn in txns {
            assert!(
                txn.bank < bank_count,
                "transaction targets bank {} of a {bank_count}-bank controller",
                txn.bank
            );
        }

        // Offer order: by arrival time, trace order breaking ties — so a
        // monotonically-timed (or untimed) trace is offered in trace order.
        let mut order: Vec<usize> = (0..txns.len()).collect();
        order.sort_by_key(|&i| (txns[i].arrival_ns, i));

        let banks = self.controller.banks_mut();
        let mut lanes: Vec<Lane> = (0..bank_count).map(|_| Lane::new(queue_depth)).collect();
        let mut events: EventQueue<Event> = EventQueue::new();
        let mut completions: Vec<Completion> = Vec::new();
        let mut cursor = 0usize;
        let mut stalled: Option<StalledAdmission> = None;
        let mut end_ns = 0.0f64;
        // Demand transactions not yet completed or dropped. The scrub
        // daemon's ticks reschedule themselves only while this is non-zero,
        // so the event loop terminates as soon as demand drains.
        let mut unfinished = txns.len();

        schedule_fresh(&mut events, &order, txns, &mut cursor, 0.0);
        if let Some(scrub) = scrub {
            if unfinished > 0 {
                for bank in 0..bank_count {
                    events.schedule(scrub.interval_ns, Event::Scrub { bank });
                }
            }
        }

        while let Some((now, event)) = events.pop() {
            match event {
                Event::Arrive { trace_index, fresh } => {
                    end_ns = end_ns.max(now);
                    let txn = txns[trace_index];
                    let lane = &mut lanes[txn.bank];
                    let mut advance_stream = fresh;
                    if lane.in_service.is_none() && !lane.scrub_busy && lane.queue.is_empty() {
                        // Idle bank, empty queue: straight into service.
                        lane.stats.admitted += 1;
                        let queued = Queued {
                            txn,
                            trace_index,
                            arrival_ns: txn.arrival_ns as f64,
                            admit_ns: now,
                        };
                        start_service(
                            lane,
                            &mut banks[txn.bank],
                            &faults,
                            &mut events,
                            queued,
                            now,
                        );
                    } else if lane.queue.is_full() {
                        match backpressure {
                            Backpressure::Drop => {
                                lane.stats.dropped += 1;
                                unfinished -= 1;
                            }
                            Backpressure::Retry { delay_ns } => {
                                lane.stats.retried_admissions += 1;
                                events.schedule(
                                    now + delay_ns,
                                    Event::Arrive {
                                        trace_index,
                                        fresh: false,
                                    },
                                );
                            }
                            Backpressure::Stall => {
                                lane.stats.stalls += 1;
                                stalled = Some(StalledAdmission {
                                    trace_index,
                                    offered_ns: now,
                                });
                                // A stalled admission blocks the host: no
                                // further fresh arrivals until it lands.
                                advance_stream = false;
                            }
                        }
                    } else {
                        admit(lane, txn, trace_index, now);
                    }
                    if advance_stream {
                        schedule_fresh(&mut events, &order, txns, &mut cursor, now);
                    }
                }
                Event::Complete { bank } => {
                    end_ns = end_ns.max(now);
                    let lane = &mut lanes[bank];
                    let served = lane.in_service.take().expect("completion without service");
                    lane.stats.completed += 1;
                    unfinished -= 1;
                    let sojourn_ns = now - served.queued.arrival_ns;
                    lane.stats.sojourn_samples_ns.push(sojourn_ns);
                    completions.push(Completion {
                        trace_index: served.queued.trace_index,
                        bank,
                        op: served.queued.txn.op,
                        arrival_ns: served.queued.arrival_ns,
                        admit_ns: served.queued.admit_ns,
                        start_ns: served.start_ns,
                        complete_ns: now,
                    });
                    try_dispatch(lane, &mut banks[bank], &faults, &mut events, policy, now);
                    // Dispatch freed a slot (or the queue was empty): a
                    // stalled admission targeting this bank can land now.
                    if let Some(blocked) = stalled {
                        let txn = txns[blocked.trace_index];
                        if txn.bank == bank && !lane.queue.is_full() {
                            stalled = None;
                            lane.stats.stall_time_ns += now - blocked.offered_ns;
                            if lane.in_service.is_none()
                                && !lane.scrub_busy
                                && lane.queue.is_empty()
                            {
                                lane.stats.admitted += 1;
                                let queued = Queued {
                                    txn,
                                    trace_index: blocked.trace_index,
                                    arrival_ns: txn.arrival_ns as f64,
                                    admit_ns: now,
                                };
                                start_service(
                                    lane,
                                    &mut banks[bank],
                                    &faults,
                                    &mut events,
                                    queued,
                                    now,
                                );
                            } else {
                                admit(lane, txn, blocked.trace_index, now);
                            }
                            // The host unblocks: resume the arrival stream,
                            // no earlier than now.
                            schedule_fresh(&mut events, &order, txns, &mut cursor, now);
                        }
                    }
                }
                Event::Scrub { bank } => {
                    // The daemon dies with the demand stream: no reschedule
                    // once everything completed or dropped, so the loop
                    // drains. (An idle tick also leaves the makespan alone.)
                    if unfinished == 0 {
                        continue;
                    }
                    let interval_ns = scrub.expect("scrub event without scrub config").interval_ns;
                    let lane = &mut lanes[bank];
                    let busy = lane.in_service.is_some() || lane.scrub_busy;
                    if busy || policy.arbitrate(!lane.queue.is_empty()) == PriorityClass::Demand {
                        // Demand preempts at arbitration: skip this tick.
                        lane.stats.scrub_deferred += 1;
                    } else {
                        let served = &mut banks[bank];
                        let busy_before = served.telemetry().ecc.scrub_busy_time;
                        served.scrub_next(&faults);
                        let service_ns =
                            (served.telemetry().ecc.scrub_busy_time - busy_before).get() * 1e9;
                        lane.scrub_busy = true;
                        events.schedule(now + service_ns, Event::ScrubComplete { bank });
                    }
                    events.schedule(now + interval_ns, Event::Scrub { bank });
                }
                Event::ScrubComplete { bank } => {
                    end_ns = end_ns.max(now);
                    let lane = &mut lanes[bank];
                    debug_assert!(lane.scrub_busy, "scrub completion without scrub");
                    lane.scrub_busy = false;
                    try_dispatch(lane, &mut banks[bank], &faults, &mut events, policy, now);
                }
            }
        }

        debug_assert!(
            stalled.is_none(),
            "event loop drained with a stalled admission"
        );
        for lane in &mut lanes {
            debug_assert!(lane.queue.is_empty() && lane.in_service.is_none() && !lane.scrub_busy);
            lane.flush_occupancy(end_ns);
            lane.stats.horizon_ns = end_ns;
        }
        for (accumulated, lane) in self.accumulated.iter_mut().zip(&lanes) {
            accumulated.merge(&lane.stats);
        }
        SchedRun {
            telemetry: self.telemetry(),
            completions,
            makespan_ns: end_ns,
        }
    }
}

/// Schedules the next not-yet-offered trace transaction, no earlier than
/// `floor_ns` (a stall pushes later arrivals back in time).
fn schedule_fresh(
    events: &mut EventQueue<Event>,
    order: &[usize],
    txns: &[Transaction],
    cursor: &mut usize,
    floor_ns: f64,
) {
    if let Some(&next) = order.get(*cursor) {
        *cursor += 1;
        let time_ns = (txns[next].arrival_ns as f64).max(floor_ns);
        events.schedule(
            time_ns,
            Event::Arrive {
                trace_index: next,
                fresh: true,
            },
        );
    }
}

/// Admits a transaction into a lane's waiting queue at `now`.
fn admit(lane: &mut Lane, txn: Transaction, trace_index: usize, now: f64) {
    lane.stats.admitted += 1;
    lane.flush_occupancy(now);
    lane.queue.admit(Queued {
        txn,
        trace_index,
        arrival_ns: txn.arrival_ns as f64,
        admit_ns: now,
    });
    lane.stats.max_depth = lane.stats.max_depth.max(lane.queue.len() as u64);
}

/// If the bank is idle and has waiting work, picks the next transaction per
/// `policy` and starts serving it.
fn try_dispatch(
    lane: &mut Lane,
    bank: &mut Bank,
    faults: &FaultPlan,
    events: &mut EventQueue<Event>,
    policy: Policy,
    now: f64,
) {
    if lane.in_service.is_some() || lane.scrub_busy {
        return;
    }
    let Some(index) = policy.choose(&mut lane.queue) else {
        return;
    };
    lane.flush_occupancy(now);
    let queued = lane.queue.take(index);
    start_service(lane, bank, faults, events, queued, now);
}

/// Runs `Bank::execute` for `queued` and schedules its completion at
/// `now + service time`. The service time is whatever the bank actually
/// charged (attempt-dependent), read off its busy-time accumulator.
fn start_service(
    lane: &mut Lane,
    bank: &mut Bank,
    faults: &FaultPlan,
    events: &mut EventQueue<Event>,
    queued: Queued,
    now: f64,
) {
    lane.stats.wait_ns.push(now - queued.admit_ns);
    let busy_before = bank.telemetry().busy_time;
    bank.execute(&queued.txn, faults);
    let service_ns = (bank.telemetry().busy_time - busy_before).get() * 1e9;
    events.schedule(
        now + service_ns,
        Event::Complete {
            bank: queued.txn.bank,
        },
    );
    lane.in_service = Some(InService {
        queued,
        start_ns: now,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ControllerConfig;
    use crate::reliability::EccMode;
    use crate::workload::Workload;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stt_sense::SchemeKind;

    fn timed_trace(config: &ControllerConfig, ops: usize, gap_ns: f64) -> Trace {
        Workload::Uniform { read_fraction: 0.7 }
            .generate(config.footprint(), ops, &mut StdRng::seed_from_u64(11))
            .with_poisson_arrivals(gap_ns, &mut StdRng::seed_from_u64(12))
    }

    fn frontend_run(config: FrontendConfig, gap_ns: f64) -> SchedRun {
        let controller_config = ControllerConfig::small(SchemeKind::Nondestructive, 3);
        let trace = timed_trace(&controller_config, 600, gap_ns);
        Frontend::new(Controller::new(controller_config), config).run(&trace)
    }

    #[test]
    fn every_offered_transaction_completes_without_bounds() {
        let run = frontend_run(FrontendConfig::fcfs_unbounded(), 10.0);
        assert_eq!(run.completions.len(), 600);
        let queue = run.telemetry.aggregate().queue;
        assert_eq!(queue.completed, 600);
        assert_eq!(queue.admitted, 600);
        assert_eq!(queue.dropped + queue.stalls + queue.retried_admissions, 0);
        assert!(run.makespan_ns > 0.0);
        assert!(run.ops_per_second() > 0.0);
    }

    #[test]
    fn runs_are_deterministic() {
        let config = FrontendConfig::fcfs_unbounded().with_policy(Policy::ReadPriority {
            write_high_water: 4,
        });
        let a = frontend_run(config, 5.0);
        let b = frontend_run(config, 5.0);
        assert_eq!(a, b);
    }

    #[test]
    fn completions_are_causally_ordered() {
        let run = frontend_run(FrontendConfig::fcfs_unbounded(), 8.0);
        for completion in &run.completions {
            assert!(completion.admit_ns >= completion.arrival_ns);
            assert!(completion.start_ns >= completion.admit_ns);
            assert!(completion.complete_ns >= completion.start_ns);
            assert!(completion.sojourn_ns() >= completion.wait_ns());
        }
        // Completion log is in completion-time order.
        assert!(run
            .completions
            .windows(2)
            .all(|w| w[0].complete_ns <= w[1].complete_ns));
    }

    #[test]
    fn drop_backpressure_bounds_the_queue_and_counts_losses() {
        let config = FrontendConfig::fcfs_unbounded()
            .with_queue_depth(4)
            .with_backpressure(Backpressure::Drop);
        // Offered load far beyond service rate (~14 ns reads, 1 ns gaps).
        let run = frontend_run(config, 1.0);
        let queue = run.telemetry.aggregate().queue;
        assert!(queue.dropped > 0, "saturation must drop");
        assert!(queue.max_depth <= 4);
        assert_eq!(queue.completed + queue.dropped, 600);
    }

    #[test]
    fn stall_backpressure_completes_everything_late() {
        let config = FrontendConfig::fcfs_unbounded()
            .with_queue_depth(4)
            .with_backpressure(Backpressure::Stall);
        let run = frontend_run(config, 1.0);
        let queue = run.telemetry.aggregate().queue;
        assert_eq!(queue.completed, 600, "stalling loses nothing");
        assert!(queue.stalls > 0);
        assert!(queue.stall_time_ns > 0.0);
        assert!(queue.max_depth <= 4);
    }

    #[test]
    fn retry_backpressure_completes_everything_with_reoffers() {
        let config = FrontendConfig::fcfs_unbounded()
            .with_queue_depth(4)
            .with_backpressure(Backpressure::Retry { delay_ns: 50.0 });
        let run = frontend_run(config, 1.0);
        let queue = run.telemetry.aggregate().queue;
        assert_eq!(queue.completed, 600, "retrying loses nothing");
        assert!(queue.retried_admissions > 0);
        assert!(queue.max_depth <= 4);
    }

    #[test]
    fn occupancy_accounting_is_consistent() {
        let run = frontend_run(FrontendConfig::fcfs_unbounded(), 2.0);
        let queue = run.telemetry.aggregate().queue;
        assert!(queue.mean_depth() > 0.0, "overload must queue");
        assert!(queue.horizon_ns > 0.0);
        assert!(queue.max_depth as f64 >= queue.mean_depth() / 3.0);
    }

    #[test]
    fn empty_trace_is_a_no_op() {
        let config = ControllerConfig::small(SchemeKind::Nondestructive, 2);
        let mut frontend = Frontend::new(Controller::new(config), FrontendConfig::default());
        let run = frontend.run(&Trace::new());
        assert_eq!(run.completions.len(), 0);
        assert_eq!(run.makespan_ns, 0.0);
        assert_eq!(run.ops_per_second(), 0.0);
    }

    #[test]
    fn state_persists_across_runs() {
        let config = ControllerConfig::small(SchemeKind::Nondestructive, 2);
        let trace = timed_trace(&config, 100, 20.0);
        let mut frontend = Frontend::new(Controller::new(config), FrontendConfig::default());
        frontend.run(&trace);
        let second = frontend.run(&trace);
        assert_eq!(second.telemetry.transactions(), 200);
        assert_eq!(second.telemetry.aggregate().queue.completed, 200);
    }

    #[test]
    #[should_panic(expected = "targets bank")]
    fn out_of_range_bank_panics() {
        let config = ControllerConfig::small(SchemeKind::Nondestructive, 2);
        let mut frontend = Frontend::new(Controller::new(config), FrontendConfig::default());
        let mut trace = Trace::new();
        trace.push(Transaction::read(9, stt_array::Address::new(0, 0)));
        frontend.run(&trace);
    }

    #[test]
    fn scrub_runs_in_idle_gaps() {
        let controller_config =
            ControllerConfig::small(SchemeKind::Nondestructive, 2).with_ecc(EccMode::Secded);
        let trace = timed_trace(&controller_config, 60, 2000.0);
        let config = FrontendConfig::fcfs_unbounded().with_scrub(ScrubConfig::every_ns(500.0));
        let run = Frontend::new(Controller::new(controller_config), config).run(&trace);
        assert_eq!(run.completions.len(), 60);
        let aggregate = run.telemetry.aggregate();
        assert!(
            aggregate.ecc.scrub_words_scanned > 0,
            "sparse traffic leaves idle gaps the daemon must use"
        );
        assert!(
            aggregate.ecc.scrub_passes > 0,
            "small banks get full passes"
        );
    }

    #[test]
    fn scrub_defers_to_demand_under_saturation() {
        let controller_config =
            ControllerConfig::small(SchemeKind::Nondestructive, 2).with_ecc(EccMode::Secded);
        // 1 ns gaps against ~14 ns reads: a demand transaction is always
        // waiting, so arbitration never picks the background class.
        let trace = timed_trace(&controller_config, 400, 1.0);
        let config = FrontendConfig::fcfs_unbounded().with_scrub(ScrubConfig::every_ns(20.0));
        let run = Frontend::new(Controller::new(controller_config), config).run(&trace);
        let aggregate = run.telemetry.aggregate();
        assert_eq!(aggregate.queue.completed, 400, "scrub must not lose demand");
        assert!(
            aggregate.queue.scrub_deferred > 0,
            "saturation must defer scrub ticks"
        );
    }

    #[test]
    fn scrub_with_no_faults_leaves_demand_traffic_bit_identical() {
        let controller_config =
            ControllerConfig::small(SchemeKind::Nondestructive, 2).with_ecc(EccMode::Secded);
        let trace = timed_trace(&controller_config, 200, 40.0);
        let mut plain = Frontend::new(
            Controller::new(controller_config.clone()),
            FrontendConfig::fcfs_unbounded(),
        );
        let mut scrubbed = Frontend::new(
            Controller::new(controller_config),
            FrontendConfig::fcfs_unbounded().with_scrub(ScrubConfig::every_ns(100.0)),
        );
        let a = plain.run(&trace);
        let b = scrubbed.run(&trace);
        assert_eq!(
            plain.controller().stored_state(),
            scrubbed.controller().stored_state(),
            "a healthy-array scrub must not disturb stored bits"
        );
        let (qa, qb) = (a.telemetry.aggregate(), b.telemetry.aggregate());
        assert_eq!(qa.misreads, qb.misreads);
        assert_eq!(qa.read_retries, qb.read_retries);
        assert!(qb.ecc.scrub_words_scanned > 0, "the daemon did run");
    }

    #[test]
    #[should_panic(expected = "scrub daemon requires ECC")]
    fn scrub_without_ecc_is_rejected() {
        let config = ControllerConfig::small(SchemeKind::Nondestructive, 1);
        let _ = Frontend::new(
            Controller::new(config),
            FrontendConfig::fcfs_unbounded().with_scrub(ScrubConfig::every_ns(100.0)),
        );
    }

    #[test]
    #[should_panic(expected = "retry delay")]
    fn non_positive_retry_delay_is_rejected() {
        let config = ControllerConfig::small(SchemeKind::Nondestructive, 1);
        let _ = Frontend::new(
            Controller::new(config),
            FrontendConfig::fcfs_unbounded()
                .with_backpressure(Backpressure::Retry { delay_ns: 0.0 }),
        );
    }
}
