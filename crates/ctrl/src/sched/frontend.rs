//! The event-driven request frontend: admission, queueing, dispatch.
//!
//! [`Frontend`] wraps a [`Controller`] and replaces its zero-queueing
//! serial replay with a discrete-event loop: transactions are *offered* at
//! their arrival timestamps, admitted into bounded per-bank queues (or
//! backpressured when full), dispatched by a scheduling [`Policy`], and
//! completed out of order across banks while per-address ordering is
//! preserved within each bank. The service stage is the exact same
//! [`Bank`] logic serial replay uses — the frontend only
//! decides *when* and *in which order* `Bank::execute` runs — which is what
//! makes the anchor property hold:
//!
//! > For the same seed and a trace with non-decreasing arrivals, FCFS
//! > dispatch at unbounded queue depth executes the exact per-bank
//! > instruction-and-RNG sequence of [`Controller::run`], so final stored
//! > state and audit counters are **bit-identical** — only the queueing
//! > telemetry (which serial replay cannot measure) differs from zero.
//!
//! That identity is asserted by the integration suite the same way the
//! `Serial ≡ Parallel` dispatch property already is.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::alloc_probe;
use crate::bank::Bank;
use crate::calib::CalibConfig;
use crate::engine::Controller;
use crate::faults::FaultPlan;
use crate::march::{DataBackground, MarchAlgorithm, MarchStep};
use crate::reliability::ScrubConfig;
use crate::telemetry::{QueueTelemetry, SojournStats, Telemetry};
use crate::txn::{Op, Transaction, TxnSource};

use super::event::EventQueue;
use super::policy::{Policy, PriorityClass};
use super::queue::{InService, Lane, ParkedRetry, Queued};

/// What admission does when a transaction's bank queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Backpressure {
    /// Block the arrival stream until the queue frees a slot (a blocking
    /// host interface: later arrivals are pushed back in time too).
    Stall,
    /// Discard the transaction and count it in the telemetry.
    Drop,
    /// Re-offer the transaction after a fixed delay (a polling host);
    /// later arrivals are *not* blocked behind it.
    Retry {
        /// How long the caller waits before re-offering (nanoseconds).
        delay_ns: f64,
    },
}

/// Configuration of the March manufacturing-test traffic source.
///
/// When present, [`Frontend::run`] lowers the algorithm once and drives the
/// schedule through every bank as [`PriorityClass::Test`] traffic: test
/// operations run only in demand-idle gaps (demand always outranks the
/// tester), outrank the scrub daemon, and are non-preemptive once started —
/// an in-flight test op finishes before a newly arrived demand transaction
/// is served. The full test re-runs on every `run` call; verdicts accumulate
/// in each bank's [`MarchTelemetry`](crate::telemetry::MarchTelemetry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MarchConfig {
    /// Which March algorithm to run.
    pub algorithm: MarchAlgorithm,
    /// Data background the notation's `0`/`1` is lowered against
    /// (defaults to [`DataBackground::Solid`], the textbook lowering).
    #[serde(default)]
    pub background: DataBackground,
    /// Raw-array test mode: March reads bypass the SECDED codec and
    /// observe the bare cell, so single-cell defects the codec would
    /// absorb are caught at every protection level. No effect without ECC.
    #[serde(default)]
    pub raw: bool,
}

impl MarchConfig {
    /// A test pass of `algorithm` over every bank (solid background,
    /// host-visible reads).
    #[must_use]
    pub fn new(algorithm: MarchAlgorithm) -> Self {
        Self {
            algorithm,
            background: DataBackground::Solid,
            raw: false,
        }
    }

    /// Lowers against `background` instead of the solid pattern.
    #[must_use]
    pub fn with_background(mut self, background: DataBackground) -> Self {
        self.background = background;
        self
    }

    /// Sets the raw-array (codec-bypass) read mode.
    #[must_use]
    pub fn with_raw(mut self, raw: bool) -> Self {
        self.raw = raw;
        self
    }
}

/// Configuration of the scheduler frontend.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrontendConfig {
    /// Per-bank waiting-queue capacity (`usize::MAX` for unbounded).
    pub queue_depth: usize,
    /// Dispatch policy.
    pub policy: Policy,
    /// What to do when a bank queue is full.
    pub backpressure: Backpressure,
    /// Background scrub daemon (see [`ScrubConfig`]): a
    /// [`PriorityClass::Background`] traffic source offering one word-scrub
    /// per bank per interval, served only in lane-idle gaps. Requires the
    /// wrapped controller to run with ECC.
    #[serde(default)]
    pub scrub: Option<ScrubConfig>,
    /// March manufacturing-test traffic source (see [`MarchConfig`]): a
    /// [`PriorityClass::Test`] citizen between demand and scrub.
    #[serde(default)]
    pub march: Option<MarchConfig>,
    /// Per-bank calibration daemon (see [`CalibConfig`]): a periodic
    /// [`PriorityClass::Background`] check of each bank's misread /
    /// retry-exhaustion rate; a tripped check runs a reference-read burst
    /// and β refit in a lane-idle gap, never delaying or reordering demand.
    /// Mutually exclusive with the inline daemon
    /// ([`ControllerConfig::with_calib`](crate::engine::ControllerConfig::with_calib)).
    #[serde(default)]
    pub calib: Option<CalibConfig>,
    /// Retain raw per-completion sojourn samples
    /// ([`SojournStats::Exact`]) instead of the default fixed-memory
    /// streaming quantile estimators. Exact mode grows telemetry by one
    /// `f64` per completion; use it for tests and sweeps that assert on
    /// exact order-statistic quantiles.
    #[serde(default)]
    pub exact_sojourn: bool,
}

impl FrontendConfig {
    /// FCFS at unbounded depth — the configuration under which the frontend
    /// reproduces serial replay bit-for-bit (backpressure can never fire).
    #[must_use]
    pub fn fcfs_unbounded() -> Self {
        Self {
            queue_depth: usize::MAX,
            policy: Policy::Fcfs,
            backpressure: Backpressure::Stall,
            scrub: None,
            march: None,
            calib: None,
            exact_sojourn: false,
        }
    }

    /// Opts into exact per-completion sojourn samples (see
    /// [`FrontendConfig::exact_sojourn`]).
    #[must_use]
    pub fn with_exact_sojourn(mut self) -> Self {
        self.exact_sojourn = true;
        self
    }

    /// Enables the background scrub daemon.
    #[must_use]
    pub fn with_scrub(mut self, scrub: ScrubConfig) -> Self {
        self.scrub = Some(scrub);
        self
    }

    /// Enables the March manufacturing-test traffic source.
    #[must_use]
    pub fn with_march(mut self, march: MarchConfig) -> Self {
        self.march = Some(march);
        self
    }

    /// Enables the per-bank calibration daemon.
    #[must_use]
    pub fn with_calib(mut self, calib: CalibConfig) -> Self {
        self.calib = Some(calib);
        self
    }

    /// Overrides the dispatch policy.
    #[must_use]
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the per-bank queue depth.
    #[must_use]
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth;
        self
    }

    /// Overrides the backpressure behaviour.
    #[must_use]
    pub fn with_backpressure(mut self, backpressure: Backpressure) -> Self {
        self.backpressure = backpressure;
        self
    }

    fn validate(&self) {
        assert!(
            self.queue_depth > 0,
            "queue depth must be at least 1 (got 0)"
        );
        if let Backpressure::Retry { delay_ns } = self.backpressure {
            assert!(
                delay_ns.is_finite() && delay_ns > 0.0,
                "retry delay must be positive, got {delay_ns}"
            );
        }
        if let Some(scrub) = self.scrub {
            assert!(
                scrub.interval_ns.is_finite() && scrub.interval_ns > 0.0,
                "scrub interval must be positive, got {}",
                scrub.interval_ns
            );
        }
        if let Some(calib) = self.calib {
            assert!(
                calib.interval_ns.is_finite() && calib.interval_ns > 0.0,
                "calibration interval must be positive, got {}",
                calib.interval_ns
            );
            assert!(
                calib.burst_reads > 0,
                "a calibration burst needs at least one read"
            );
        }
    }
}

impl Default for FrontendConfig {
    fn default() -> Self {
        Self::fcfs_unbounded()
    }
}

/// One served transaction, as observed at the frontend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// Index of the transaction in the offered trace.
    pub trace_index: usize,
    /// Bank that served it.
    pub bank: usize,
    /// The operation.
    pub op: Op,
    /// Original arrival timestamp (nanoseconds).
    pub arrival_ns: f64,
    /// When it entered the bank queue (≥ arrival under stalls/retries).
    pub admit_ns: f64,
    /// When the bank started serving it.
    pub start_ns: f64,
    /// When service finished.
    pub complete_ns: f64,
}

impl Completion {
    /// Arrival-to-completion time — what a host actually waits.
    #[must_use]
    pub fn sojourn_ns(&self) -> f64 {
        self.complete_ns - self.arrival_ns
    }

    /// Admission-to-service waiting time.
    #[must_use]
    pub fn wait_ns(&self) -> f64 {
        self.start_ns - self.admit_ns
    }

    /// Pure service time.
    #[must_use]
    pub fn service_ns(&self) -> f64 {
        self.complete_ns - self.start_ns
    }
}

/// Struct-of-arrays completion log: one column per [`Completion`] field.
///
/// The frontend appends one row per served transaction; columnar storage
/// keeps the hot-loop push down to seven independent `Vec` writes (all
/// preallocated to the trace length, so steady state never reallocates) and
/// lets post-run analysis scan a single column without striding over the
/// rest. Rows decode back into [`Completion`] on demand via
/// [`CompletionLog::get`] / [`CompletionLog::iter`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompletionLog {
    trace_index: Vec<u32>,
    bank: Vec<u32>,
    op: Vec<Op>,
    arrival_ns: Vec<f64>,
    admit_ns: Vec<f64>,
    start_ns: Vec<f64>,
    complete_ns: Vec<f64>,
}

impl CompletionLog {
    /// An empty log with room for `capacity` rows in every column.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            trace_index: Vec::with_capacity(capacity),
            bank: Vec::with_capacity(capacity),
            op: Vec::with_capacity(capacity),
            arrival_ns: Vec::with_capacity(capacity),
            admit_ns: Vec::with_capacity(capacity),
            start_ns: Vec::with_capacity(capacity),
            complete_ns: Vec::with_capacity(capacity),
        }
    }

    /// Number of completions recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.complete_ns.len()
    }

    /// `true` when nothing completed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.complete_ns.is_empty()
    }

    /// Appends one completion row.
    ///
    /// # Panics
    /// Panics when `trace_index` or `bank` exceeds `u32::MAX` (the columns
    /// store them as 32-bit words).
    pub fn push(&mut self, completion: Completion) {
        self.trace_index
            .push(u32::try_from(completion.trace_index).expect("trace index fits u32"));
        self.bank
            .push(u32::try_from(completion.bank).expect("bank index fits u32"));
        self.op.push(completion.op);
        self.arrival_ns.push(completion.arrival_ns);
        self.admit_ns.push(completion.admit_ns);
        self.start_ns.push(completion.start_ns);
        self.complete_ns.push(completion.complete_ns);
    }

    /// Decodes row `index` back into a [`Completion`].
    ///
    /// # Panics
    /// Panics when `index` is out of bounds.
    #[must_use]
    pub fn get(&self, index: usize) -> Completion {
        Completion {
            trace_index: self.trace_index[index] as usize,
            bank: self.bank[index] as usize,
            op: self.op[index],
            arrival_ns: self.arrival_ns[index],
            admit_ns: self.admit_ns[index],
            start_ns: self.start_ns[index],
            complete_ns: self.complete_ns[index],
        }
    }

    /// Iterates the rows as [`Completion`] values, in completion order.
    pub fn iter(&self) -> impl Iterator<Item = Completion> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// The completion-timestamp column (nanoseconds, completion order).
    #[must_use]
    pub fn complete_ns(&self) -> &[f64] {
        &self.complete_ns
    }
}

impl<'a> IntoIterator for &'a CompletionLog {
    type Item = Completion;
    type IntoIter = CompletionIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        CompletionIter { log: self, next: 0 }
    }
}

/// Iterator over a [`CompletionLog`]'s decoded rows.
#[derive(Debug)]
pub struct CompletionIter<'a> {
    log: &'a CompletionLog,
    next: usize,
}

impl Iterator for CompletionIter<'_> {
    type Item = Completion;

    fn next(&mut self) -> Option<Completion> {
        if self.next >= self.log.len() {
            return None;
        }
        let row = self.log.get(self.next);
        self.next += 1;
        Some(row)
    }
}

/// The outcome of one [`Frontend::run`]: telemetry (with the queueing
/// section filled in), the per-transaction completion log in completion
/// order, and the run's makespan.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedRun {
    /// Controller telemetry with [`QueueTelemetry`] populated per bank.
    pub telemetry: Telemetry,
    /// Every served transaction, in completion order (deterministic),
    /// stored column-wise.
    pub completions: CompletionLog,
    /// Time of the last completion (nanoseconds); 0 for an empty trace.
    pub makespan_ns: f64,
    /// Heap allocations observed *inside* the event loop, via
    /// [`alloc_probe`]. Always 0 unless the process installed a counting
    /// allocator (the `sched_frontend` bench does, and asserts 0 for the
    /// fault-free hot path).
    pub steady_state_allocs: u64,
}

impl SchedRun {
    /// Achieved throughput in transactions per second (0 for an empty run).
    #[must_use]
    pub fn ops_per_second(&self) -> f64 {
        if self.makespan_ns > 0.0 {
            self.completions.len() as f64 / (self.makespan_ns * 1e-9)
        } else {
            0.0
        }
    }
}

/// What the event loop reacts to.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// A transaction is offered to its bank (fresh from the trace, or a
    /// re-offer under [`Backpressure::Retry`]).
    Arrive { trace_index: usize, fresh: bool },
    /// A bank finished serving its in-flight transaction.
    Complete { bank: usize },
    /// The scrub daemon's periodic tick: offer one word-scrub to `bank`.
    /// Served only when the lane is idle and the policy arbitrates
    /// [`PriorityClass::Background`]; deferred (and counted) otherwise.
    Scrub { bank: usize },
    /// A bank finished an in-flight word-scrub.
    ScrubComplete { bank: usize },
    /// Offer `bank` its next March-test operation. Served when the lane is
    /// idle and no demand waits (strict [`PriorityClass`] order); deferred
    /// (and counted) otherwise, to be re-kicked by the next completion.
    March { bank: usize },
    /// A bank finished an in-flight March-test operation.
    MarchComplete { bank: usize },
    /// The calibration daemon's periodic tick: evaluate `bank`'s trip
    /// condition. A check is free; a *tripped* check runs the burst +
    /// refit and occupies the lane like scrub. Background priority:
    /// deferred (and counted) when the lane is busy or demand/test waits.
    Calib { bank: usize },
    /// A bank finished an in-flight calibration burst.
    CalibComplete { bank: usize },
}

/// Run state of the March traffic source: one lowered schedule shared by
/// every bank, plus per-bank progress cursors. The schedule is lowered once
/// per [`Frontend::run`] call, so every run replays the full test.
struct MarchSource {
    /// The lowered program (empty when no [`MarchConfig`] is set).
    steps: Vec<MarchStep>,
    /// Next step index per bank.
    cursor: Vec<usize>,
    /// Whether an [`Event::March`] for the bank is already in the heap
    /// (at most one per bank, like the scrub daemon's tick).
    kicked: Vec<bool>,
    /// Steps not yet executed across all banks; the scrub daemon stays
    /// alive — and the event loop keeps running — while this is non-zero.
    remaining: usize,
    /// Raw-array read mode (see [`MarchConfig::raw`]).
    raw: bool,
}

impl MarchSource {
    fn new(
        config: Option<MarchConfig>,
        capacity_bits: usize,
        cols: usize,
        bank_count: usize,
    ) -> Self {
        let steps = match config {
            Some(march) => {
                let cells = u32::try_from(capacity_bits)
                    .expect("bank capacity must fit March cell indices");
                let cols = u32::try_from(cols).expect("bank width must fit March cell indices");
                march
                    .algorithm
                    .program()
                    .lower_with_background(cells, cols, march.background)
            }
            None => Vec::new(),
        };
        Self {
            remaining: steps.len() * bank_count,
            cursor: vec![0; bank_count],
            kicked: vec![false; bank_count],
            steps,
            raw: config.is_some_and(|march| march.raw),
        }
    }

    /// `true` while the bank has March steps left to run.
    fn waiting(&self, bank: usize) -> bool {
        self.cursor[bank] < self.steps.len()
    }
}

/// Schedules `bank`'s next March offer at `now` if steps remain, none is
/// already pending, and the lane is idle — called wherever the lane may
/// have just gone idle (every completion flavour). A ready test op that
/// finds the lane re-occupied (demand won arbitration at this completion)
/// counts as one deferral.
fn kick_march(
    march: &mut MarchSource,
    lane: &mut Lane,
    events: &mut EventQueue<Event>,
    bank: usize,
    now: f64,
) {
    if !march.waiting(bank) || march.kicked[bank] {
        return;
    }
    if lane.in_service.is_some() || lane.scrub_busy || lane.march_busy || lane.calib_busy {
        lane.stats.march_deferred += 1;
        return;
    }
    march.kicked[bank] = true;
    events.schedule(now, Event::March { bank });
}

/// An admission blocked on a full queue under [`Backpressure::Stall`].
#[derive(Debug, Clone, Copy)]
struct StalledAdmission {
    trace_index: usize,
    /// When the blocked offer was made (stall time accrues from here).
    offered_ns: f64,
}

/// The event-driven scheduler frontend over a [`Controller`].
///
/// State persists across [`Frontend::run`] calls exactly like
/// [`Controller::run`]: cell arrays, RNG streams and telemetry accumulate,
/// so a trace can be offered in chunks.
///
/// # Examples
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use stt_ctrl::sched::{Frontend, FrontendConfig, Policy};
/// use stt_ctrl::{Controller, ControllerConfig, Workload};
/// use stt_sense::SchemeKind;
///
/// let config = ControllerConfig::small(SchemeKind::Nondestructive, 2);
/// let trace = Workload::ReadMostly
///     .generate(config.footprint(), 200, &mut StdRng::seed_from_u64(7))
///     .with_poisson_arrivals(20.0, &mut StdRng::seed_from_u64(8));
/// let mut frontend = Frontend::new(
///     Controller::new(config),
///     FrontendConfig::fcfs_unbounded().with_policy(Policy::ReadPriority {
///         write_high_water: 8,
///     }),
/// );
/// let run = frontend.run(&trace);
/// assert_eq!(run.completions.len(), 200);
/// let queue = run.telemetry.aggregate().queue;
/// assert_eq!(queue.completed, 200);
/// assert!(queue.sojourn_p99() >= queue.sojourn_p50());
/// ```
pub struct Frontend {
    controller: Controller,
    config: FrontendConfig,
    /// Queueing telemetry accumulated across runs, one entry per bank.
    accumulated: Vec<QueueTelemetry>,
}

impl Frontend {
    /// Wraps `controller` with the scheduling frontend `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (zero queue depth,
    /// non-positive retry delay, non-positive scrub interval), or if scrub
    /// is enabled on a controller without ECC (scrub re-reads words through
    /// the codec; without check bits there is nothing to correct).
    #[must_use]
    pub fn new(controller: Controller, config: FrontendConfig) -> Self {
        config.validate();
        assert!(
            config.scrub.is_none() || controller.config().ecc.is_enabled(),
            "the scrub daemon requires ECC (see ControllerConfig::with_ecc)"
        );
        assert!(
            config.calib.is_none() || controller.config().calib.is_none(),
            "enable the inline calibration daemon (ControllerConfig::with_calib) or the \
             frontend daemon (FrontendConfig::with_calib), not both"
        );
        let banks = controller.config().banks;
        Self {
            controller,
            config,
            accumulated: vec![QueueTelemetry::default(); banks],
        }
    }

    /// The frontend configuration.
    #[must_use]
    pub fn config(&self) -> &FrontendConfig {
        &self.config
    }

    /// The wrapped controller (for state inspection: stored bits, audit).
    #[must_use]
    pub fn controller(&self) -> &Controller {
        &self.controller
    }

    /// Unwraps the controller, discarding the frontend.
    #[must_use]
    pub fn into_controller(self) -> Controller {
        self.controller
    }

    /// A telemetry snapshot with the queueing section filled in from the
    /// runs so far.
    #[must_use]
    pub fn telemetry(&self) -> Telemetry {
        let mut telemetry = self.controller.telemetry();
        for (bank, queue) in telemetry.banks.iter_mut().zip(&self.accumulated) {
            bank.queue = queue.clone();
        }
        telemetry
    }

    /// Offers every transaction of `trace` at its arrival time and runs the
    /// event loop to completion (all queues drained, all banks idle).
    ///
    /// Generic over [`TxnSource`], so an owned [`Trace`](crate::Trace) and a
    /// zero-copy [`TraceView`](crate::TraceView) replay through identical
    /// code and produce bit-identical results.
    ///
    /// The simulated clock restarts at zero for each call; accumulated
    /// telemetry (including queueing horizons) sums across calls.
    ///
    /// All working storage (event heap, lane arenas, completion columns,
    /// retry waitlists) is preallocated from the trace length before the
    /// event loop starts, so the fault-free steady state performs no heap
    /// allocation — [`SchedRun::steady_state_allocs`] reports what a
    /// counting allocator observed inside the loop, when one is installed.
    ///
    /// # Panics
    ///
    /// Panics if a transaction addresses a bank the controller does not
    /// have.
    pub fn run<S: TxnSource + ?Sized>(&mut self, trace: &S) -> SchedRun {
        let FrontendConfig {
            queue_depth,
            policy,
            backpressure,
            scrub,
            march,
            calib,
            exact_sojourn,
        } = self.config;
        let faults = self.controller.config().faults.clone();
        let bank_count = self.controller.config().banks;
        let capacity_bits = self.controller.config().spec.capacity_bits();
        let cols = self.controller.config().spec.cols;
        let n = trace.len();

        // One validation pass tripling as a monotonicity probe (so the
        // offer-order sort below is skipped for the common case of a
        // generator- or converter-produced trace with non-decreasing
        // arrivals) and a per-bank census (so each lane preallocates
        // exactly the entries that could ever wait in it, instead of the
        // whole trace length per bank).
        let mut monotone = true;
        let mut prev_arrival = 0u64;
        let mut bank_load = vec![0usize; bank_count];
        for i in 0..n {
            let txn = trace.get(i);
            assert!(
                txn.bank < bank_count,
                "transaction targets bank {} of a {bank_count}-bank controller",
                txn.bank
            );
            bank_load[txn.bank] += 1;
            monotone &= txn.arrival_ns >= prev_arrival;
            prev_arrival = txn.arrival_ns;
        }

        // Offer order: by arrival time, trace order breaking ties — so a
        // monotonically-timed (or untimed) trace is offered in trace order.
        let mut order: Vec<u32> = (0..n as u32).collect();
        if !monotone {
            order.sort_by_key(|&i| (trace.get(i as usize).arrival_ns, i));
        }

        let banks = self.controller.banks_mut();
        // FCFS at unbounded depth with no scrub daemon is the hot
        // configuration (it is also the serial-replay anchor): backpressure
        // can never fire, banks never interact, and the only event kinds
        // are fresh arrivals and completions. That specialisation replaces
        // the event heap with a sorted-arrival cursor merged against one
        // pending-completion slot per bank, and the shared slab queue with
        // lane-local FIFO rings, preserving the heap's exact `(time, seq)`
        // pop order — see DESIGN.md §12. The bank-count gate bounds the
        // per-event completion-slot scan.
        let fast_path = matches!(policy, Policy::Fcfs)
            && queue_depth == usize::MAX
            && scrub.is_none()
            && march.is_none()
            && calib.is_none()
            && bank_count <= FAST_PATH_MAX_BANKS;
        // Lane arenas sized to the deepest each queue can get this run (a
        // lane can only ever hold its own bank's transactions); the retry
        // waitlist can hold every one of them in the worst case. The fast
        // path queues in its own rings, so its slab stays unallocated.
        let retrying = matches!(backpressure, Backpressure::Retry { .. });
        let mut lanes: Vec<Lane> = bank_load
            .iter()
            .map(|&load| {
                let hint = if fast_path { 0 } else { queue_depth.min(load) };
                let mut lane = Lane::with_capacity_hint(queue_depth, hint);
                if exact_sojourn {
                    lane.stats.sojourn = SojournStats::exact();
                }
                if retrying {
                    lane.parked.reserve(load);
                }
                lane
            })
            .collect();
        let mut completions = CompletionLog::with_capacity(n);
        let mut end_ns = 0.0f64;

        if fast_path {
            let mut slots = vec![CompletionSlot::idle(); bank_count];
            let mut in_flight = vec![FastInFlight::default(); bank_count];
            let mut rings: Vec<VecDeque<FastQueued>> = bank_load
                .iter()
                .map(|&load| VecDeque::with_capacity(load))
                .collect();
            let allocs_before = alloc_probe::count();
            end_ns = fcfs_unbounded_loop(
                trace,
                &order,
                &mut lanes,
                banks,
                &faults,
                &mut slots,
                &mut rings,
                &mut in_flight,
                &mut completions,
            );
            let steady_state_allocs = alloc_probe::count() - allocs_before;
            return self.finish_run(lanes, completions, end_ns, steady_state_allocs);
        }

        // In flight at any instant: one fresh arrival, per bank one
        // completion + one scrub tick + one scrub completion + one March
        // offer or completion + one calibration tick + one calibration
        // completion, plus at most one re-offer per parked transaction.
        let mut events: EventQueue<Event> =
            EventQueue::with_capacity(if retrying { n } else { 0 } + 6 * bank_count + 4);
        let mut cursor = 0usize;
        let mut stalled: Option<StalledAdmission> = None;
        // Demand transactions not yet completed or dropped. The scrub and
        // calibration daemons' ticks reschedule themselves only while this
        // (or the March backlog) is non-zero, so the event loop terminates
        // as soon as demand and test traffic drain.
        let mut unfinished = n;
        let mut march = MarchSource::new(march, capacity_bits, cols, bank_count);

        schedule_fresh(&mut events, &order, trace, &mut cursor, 0.0);
        for bank in 0..bank_count {
            if march.waiting(bank) {
                march.kicked[bank] = true;
                events.schedule(0.0, Event::March { bank });
            }
        }
        if let Some(scrub) = scrub {
            if unfinished > 0 || march.remaining > 0 {
                for bank in 0..bank_count {
                    events.schedule(scrub.interval_ns, Event::Scrub { bank });
                }
            }
        }
        if let Some(calib) = calib {
            if unfinished > 0 || march.remaining > 0 {
                for bank in 0..bank_count {
                    events.schedule(calib.interval_ns, Event::Calib { bank });
                }
            }
        }

        let allocs_before = alloc_probe::count();
        while let Some((now, event)) = events.pop() {
            match event {
                Event::Arrive { trace_index, fresh } => {
                    end_ns = end_ns.max(now);
                    let txn = trace.get(trace_index);
                    let lane = &mut lanes[txn.bank];
                    let mut advance_stream = fresh;
                    if lane.in_service.is_none()
                        && !lane.scrub_busy
                        && !lane.march_busy
                        && !lane.calib_busy
                        && lane.queue.is_empty()
                    {
                        // Idle bank, empty queue: straight into service.
                        lane.stats.admitted += 1;
                        let queued = Queued {
                            txn,
                            trace_index,
                            arrival_ns: txn.arrival_ns as f64,
                            admit_ns: now,
                        };
                        let complete_ns =
                            start_service(lane, &mut banks[txn.bank], &faults, queued, now);
                        events.schedule(complete_ns, Event::Complete { bank: txn.bank });
                    } else if lane.queue.is_full() {
                        match backpressure {
                            Backpressure::Drop => {
                                lane.stats.dropped += 1;
                                unfinished -= 1;
                            }
                            Backpressure::Retry { delay_ns } => {
                                // Park off-queue instead of re-enqueueing a
                                // poll event: the transaction waits in lane
                                // FIFO order and is re-offered on its
                                // original polling grid when a slot frees
                                // (see wake_parked). This failed poll counts
                                // now; skipped ones are reconstructed
                                // arithmetically at wake time.
                                lane.stats.retried_admissions += 1;
                                lane.parked.push_back(ParkedRetry {
                                    trace_index: trace_index as u32,
                                    next_poll_ns: now + delay_ns,
                                });
                            }
                            Backpressure::Stall => {
                                lane.stats.stalls += 1;
                                stalled = Some(StalledAdmission {
                                    trace_index,
                                    offered_ns: now,
                                });
                                // A stalled admission blocks the host: no
                                // further fresh arrivals until it lands.
                                advance_stream = false;
                            }
                        }
                    } else {
                        admit(lane, txn, trace_index, now);
                    }
                    if advance_stream {
                        schedule_fresh(&mut events, &order, trace, &mut cursor, now);
                    }
                }
                Event::Complete { bank } => {
                    end_ns = end_ns.max(now);
                    let lane = &mut lanes[bank];
                    let served = lane.in_service.take().expect("completion without service");
                    lane.stats.completed += 1;
                    unfinished -= 1;
                    let sojourn_ns = now - served.queued.arrival_ns;
                    lane.stats.sojourn.observe(sojourn_ns);
                    completions.push(Completion {
                        trace_index: served.queued.trace_index,
                        bank,
                        op: served.queued.txn.op,
                        arrival_ns: served.queued.arrival_ns,
                        admit_ns: served.queued.admit_ns,
                        start_ns: served.start_ns,
                        complete_ns: now,
                    });
                    try_dispatch(lane, &mut banks[bank], &faults, &mut events, policy, now);
                    wake_parked(lane, &mut events, backpressure, now);
                    // Dispatch freed a slot (or the queue was empty): a
                    // stalled admission targeting this bank can land now.
                    if let Some(blocked) = stalled {
                        let txn = trace.get(blocked.trace_index);
                        if txn.bank == bank && !lane.queue.is_full() {
                            stalled = None;
                            lane.stats.stall_time_ns += now - blocked.offered_ns;
                            if lane.in_service.is_none()
                                && !lane.scrub_busy
                                && !lane.march_busy
                                && !lane.calib_busy
                                && lane.queue.is_empty()
                            {
                                lane.stats.admitted += 1;
                                let queued = Queued {
                                    txn,
                                    trace_index: blocked.trace_index,
                                    arrival_ns: txn.arrival_ns as f64,
                                    admit_ns: now,
                                };
                                let complete_ns =
                                    start_service(lane, &mut banks[bank], &faults, queued, now);
                                events.schedule(complete_ns, Event::Complete { bank });
                            } else {
                                admit(lane, txn, blocked.trace_index, now);
                            }
                            // The host unblocks: resume the arrival stream,
                            // no earlier than now.
                            schedule_fresh(&mut events, &order, trace, &mut cursor, now);
                        }
                    }
                    kick_march(&mut march, &mut lanes[bank], &mut events, bank, now);
                }
                Event::Scrub { bank } => {
                    // The daemon dies with the demand and test streams: no
                    // reschedule once everything completed or dropped, so
                    // the loop drains. (An idle tick also leaves the
                    // makespan alone.)
                    if unfinished == 0 && march.remaining == 0 {
                        continue;
                    }
                    let interval_ns = scrub.expect("scrub event without scrub config").interval_ns;
                    let lane = &mut lanes[bank];
                    let busy = lane.in_service.is_some()
                        || lane.scrub_busy
                        || lane.march_busy
                        || lane.calib_busy;
                    if busy
                        || policy.arbitrate3(!lane.queue.is_empty(), march.waiting(bank))
                            != PriorityClass::Background
                    {
                        // Demand and test traffic preempt at arbitration:
                        // skip this tick.
                        lane.stats.scrub_deferred += 1;
                    } else {
                        let served = &mut banks[bank];
                        let busy_before = served.telemetry().ecc.scrub_busy_time;
                        served.scrub_next(&faults);
                        let service_ns =
                            (served.telemetry().ecc.scrub_busy_time - busy_before).get() * 1e9;
                        lane.scrub_busy = true;
                        events.schedule(now + service_ns, Event::ScrubComplete { bank });
                    }
                    events.schedule(now + interval_ns, Event::Scrub { bank });
                }
                Event::ScrubComplete { bank } => {
                    end_ns = end_ns.max(now);
                    let lane = &mut lanes[bank];
                    debug_assert!(lane.scrub_busy, "scrub completion without scrub");
                    lane.scrub_busy = false;
                    try_dispatch(lane, &mut banks[bank], &faults, &mut events, policy, now);
                    wake_parked(lane, &mut events, backpressure, now);
                    kick_march(&mut march, &mut lanes[bank], &mut events, bank, now);
                }
                Event::March { bank } => {
                    march.kicked[bank] = false;
                    if !march.waiting(bank) {
                        continue;
                    }
                    let lane = &mut lanes[bank];
                    let busy = lane.in_service.is_some()
                        || lane.scrub_busy
                        || lane.march_busy
                        || lane.calib_busy;
                    if busy
                        || policy.arbitrate3(!lane.queue.is_empty(), true) != PriorityClass::Test
                    {
                        // Whatever occupies the lane re-kicks the test when
                        // it completes (a non-empty queue implies a busy
                        // lane, so a completion is always pending here).
                        lane.stats.march_deferred += 1;
                        continue;
                    }
                    end_ns = end_ns.max(now);
                    let step = march.steps[march.cursor[bank]];
                    march.cursor[bank] += 1;
                    march.remaining -= 1;
                    let served = &mut banks[bank];
                    let busy_before = served.telemetry().march.busy_time;
                    served.execute_march_op(step.cell, step.op, step.element, march.raw, &faults);
                    let service_ns = (served.telemetry().march.busy_time - busy_before).get() * 1e9;
                    lane.march_busy = true;
                    events.schedule(now + service_ns, Event::MarchComplete { bank });
                }
                Event::MarchComplete { bank } => {
                    end_ns = end_ns.max(now);
                    let lane = &mut lanes[bank];
                    debug_assert!(lane.march_busy, "march completion without march op");
                    lane.march_busy = false;
                    try_dispatch(lane, &mut banks[bank], &faults, &mut events, policy, now);
                    wake_parked(lane, &mut events, backpressure, now);
                    kick_march(&mut march, &mut lanes[bank], &mut events, bank, now);
                }
                Event::Calib { bank } => {
                    // Like the scrub daemon, the calibration daemon dies
                    // with the demand and test streams.
                    if unfinished == 0 && march.remaining == 0 {
                        continue;
                    }
                    let config = calib.expect("calibration event without calib config");
                    let lane = &mut lanes[bank];
                    let busy = lane.in_service.is_some()
                        || lane.scrub_busy
                        || lane.march_busy
                        || lane.calib_busy;
                    if busy
                        || policy.arbitrate3(!lane.queue.is_empty(), march.waiting(bank))
                            != PriorityClass::Background
                    {
                        lane.stats.calib_deferred += 1;
                    } else {
                        // A check that does not trip is free (counter
                        // inspection, no array access); only a tripped
                        // check — burst + refit — occupies the lane.
                        let served = &mut banks[bank];
                        let busy_before = served.telemetry().calib.busy_time;
                        if served.calibration_tick(&config) {
                            let service_ns =
                                (served.telemetry().calib.busy_time - busy_before).get() * 1e9;
                            lane.calib_busy = true;
                            events.schedule(now + service_ns, Event::CalibComplete { bank });
                        }
                    }
                    events.schedule(now + config.interval_ns, Event::Calib { bank });
                }
                Event::CalibComplete { bank } => {
                    end_ns = end_ns.max(now);
                    let lane = &mut lanes[bank];
                    debug_assert!(lane.calib_busy, "calibration completion without a burst");
                    lane.calib_busy = false;
                    try_dispatch(lane, &mut banks[bank], &faults, &mut events, policy, now);
                    wake_parked(lane, &mut events, backpressure, now);
                    kick_march(&mut march, &mut lanes[bank], &mut events, bank, now);
                }
            }
        }
        let steady_state_allocs = alloc_probe::count() - allocs_before;

        debug_assert_eq!(
            march.remaining, 0,
            "event loop drained with March steps pending"
        );

        debug_assert!(
            stalled.is_none(),
            "event loop drained with a stalled admission"
        );
        self.finish_run(lanes, completions, end_ns, steady_state_allocs)
    }

    /// Shared epilogue of both loop flavours: seals per-lane telemetry at
    /// the run horizon, folds it into the accumulated totals and assembles
    /// the [`SchedRun`].
    fn finish_run(
        &mut self,
        mut lanes: Vec<Lane>,
        completions: CompletionLog,
        end_ns: f64,
        steady_state_allocs: u64,
    ) -> SchedRun {
        for lane in &mut lanes {
            debug_assert!(lane.queue.is_empty() && lane.in_service.is_none() && !lane.scrub_busy);
            debug_assert!(!lane.march_busy, "drained loop left a March op in flight");
            debug_assert!(
                !lane.calib_busy,
                "drained loop left a calibration burst in flight"
            );
            debug_assert!(lane.parked.is_empty(), "drained loop left parked retries");
            lane.flush_occupancy(end_ns);
            lane.stats.horizon_ns = end_ns;
        }
        for (accumulated, lane) in self.accumulated.iter_mut().zip(&lanes) {
            accumulated.merge(&lane.stats);
        }
        SchedRun {
            telemetry: self.telemetry(),
            completions,
            makespan_ns: end_ns,
            steady_state_allocs,
        }
    }
}

/// Schedules the next not-yet-offered trace transaction, no earlier than
/// `floor_ns` (a stall pushes later arrivals back in time).
fn schedule_fresh<S: TxnSource + ?Sized>(
    events: &mut EventQueue<Event>,
    order: &[u32],
    trace: &S,
    cursor: &mut usize,
    floor_ns: f64,
) {
    if let Some(&next) = order.get(*cursor) {
        *cursor += 1;
        let next = next as usize;
        let time_ns = (trace.get(next).arrival_ns as f64).max(floor_ns);
        events.schedule(
            time_ns,
            Event::Arrive {
                trace_index: next,
                fresh: true,
            },
        );
    }
}

/// Widest controller the FCFS-unbounded fast path serves: each event pops
/// via a linear scan of the per-bank completion slots, so the scan must
/// stay trivially cheap. Wider controllers fall back to the event heap.
const FAST_PATH_MAX_BANKS: usize = 16;

/// One bank's pending completion in the fast path: the instant service
/// finishes, plus the sequence number the equivalent heap event would have
/// carried (the tie-breaker that keeps pop order bit-compatible with the
/// general loop).
///
/// Packed as `(time_ns.to_bits() << 64) | seq`: every instant the loop
/// schedules is non-negative and non-NaN, and over those floats IEEE-754
/// bit order equals numeric order — so a single `u128` compare reproduces
/// the heap's `(time, seq)` lexicographic pop order branchlessly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct CompletionSlot {
    key: u128,
}

impl CompletionSlot {
    fn new(time_ns: f64, seq: u64) -> Self {
        debug_assert!(time_ns >= 0.0, "event instants are non-negative");
        Self {
            key: (u128::from(time_ns.to_bits()) << 64) | u128::from(seq),
        }
    }

    fn idle() -> Self {
        Self::new(f64::INFINITY, u64::MAX)
    }

    fn time_ns(self) -> f64 {
        f64::from_bits((self.key >> 64) as u64)
    }
}

/// Fast-path queue entry: the transaction is re-decoded from the trace at
/// dispatch time, so a waiting ring holds 16 bytes per entry instead of a
/// full [`Queued`]. (Arrival time is implied: under FCFS-unbounded it is
/// always the transaction's own `arrival_ns`.)
#[derive(Debug, Clone, Copy)]
struct FastQueued {
    trace_index: u32,
    admit_ns: f64,
}

/// Fast-path in-flight record — the lane's `in_service` equivalent, kept
/// in a flat per-bank array so service start and completion never touch
/// the `Option` machinery. Valid exactly while the bank's completion slot
/// is non-idle.
#[derive(Debug, Clone, Copy, Default)]
struct FastInFlight {
    trace_index: u32,
    admit_ns: f64,
    start_ns: f64,
}

/// The service-start half of the fast path: identical telemetry and bank
/// work to [`start_service`], minus the `InService` store (the caller
/// records a [`FastInFlight`] instead). Returns the completion instant.
fn fast_start_service(
    lane: &mut Lane,
    bank: &mut Bank,
    faults: &FaultPlan,
    txn: &Transaction,
    admit_ns: f64,
    now: f64,
) -> f64 {
    lane.stats.wait_ns.push(now - admit_ns);
    let busy_before = bank.telemetry().busy_time;
    bank.execute(txn, faults);
    let service_ns = (bank.telemetry().busy_time - busy_before).get() * 1e9;
    now + service_ns
}

/// The raw-speed specialisation of the event loop for FCFS dispatch at
/// unbounded queue depth with no scrub daemon (DESIGN.md §12).
///
/// Under that configuration backpressure can never fire and the only
/// event kinds are fresh arrivals — already sorted in `order` — and bank
/// completions, of which at most one per bank is pending. The heap
/// therefore collapses to a cursor over `order` merged against
/// `bank_count` completion slots by `(time, seq)`, with sequence numbers
/// assigned at exactly the points the general loop calls
/// `EventQueue::schedule`. Pop order, per-lane telemetry, completion-log
/// order and bank state are bit-identical to the general loop — the
/// integration suite asserts it by replaying the same trace down both
/// paths. Returns the run horizon.
// The arguments are the loop's working set, preallocated by the caller so
// the loop itself stays allocation-free; a bundling struct would only
// rename the problem.
#[allow(clippy::too_many_arguments)]
fn fcfs_unbounded_loop<S: TxnSource + ?Sized>(
    trace: &S,
    order: &[u32],
    lanes: &mut [Lane],
    banks: &mut [Bank],
    faults: &FaultPlan,
    slots: &mut [CompletionSlot],
    rings: &mut [VecDeque<FastQueued>],
    in_flight: &mut [FastInFlight],
    completions: &mut CompletionLog,
) -> f64 {
    let Some(&first) = order.first() else {
        return 0.0;
    };
    let mut end_ns = 0.0f64;
    // The one pending fresh arrival (mirrors `schedule_fresh`); idle (time
    // = INFINITY) once the trace is exhausted. The transaction itself is
    // cached so the handler does not decode it a second time.
    let mut arr_index = first as usize;
    let mut arr_txn = trace.get(arr_index);
    let mut arr_slot = CompletionSlot::new((arr_txn.arrival_ns as f64).max(0.0), 0);
    let mut next_seq = 1u64;
    let mut cursor = 1usize;
    loop {
        // Earliest pending event by (time, seq) — the heap's exact pop
        // order, found by scanning one arrival and ≤ bank_count slots.
        let mut bank = usize::MAX;
        let mut best = arr_slot;
        for (b, slot) in slots.iter().enumerate() {
            if *slot < best {
                bank = b;
                best = *slot;
            }
        }
        if best == CompletionSlot::idle() {
            break;
        }
        let now = best.time_ns();
        // Events pop in time order, so the horizon only ever advances.
        end_ns = now;
        if bank == usize::MAX {
            // Fresh arrival (Event::Arrive with fresh = true).
            let trace_index = arr_index;
            let txn = arr_txn;
            let b = txn.bank;
            let lane = &mut lanes[b];
            // Slot idle ⟺ the bank is not serving (fast-path invariant),
            // and the slot is already hot from the scan above.
            if slots[b] == CompletionSlot::idle() && rings[b].is_empty() {
                // Idle bank, empty queue: straight into service.
                lane.stats.admitted += 1;
                let complete_ns = fast_start_service(lane, &mut banks[b], faults, &txn, now, now);
                in_flight[b] = FastInFlight {
                    trace_index: trace_index as u32,
                    admit_ns: now,
                    start_ns: now,
                };
                slots[b] = CompletionSlot::new(complete_ns, next_seq);
                next_seq += 1;
            } else {
                // `admit` against the lane-local FIFO ring: same counter
                // and depth-integral updates, no slab indirection.
                lane.stats.admitted += 1;
                lane.stats.depth_time_ns += rings[b].len() as f64 * (now - lane.last_change_ns);
                lane.last_change_ns = now;
                rings[b].push_back(FastQueued {
                    trace_index: trace_index as u32,
                    admit_ns: now,
                });
                lane.stats.max_depth = lane.stats.max_depth.max(rings[b].len() as u64);
            }
            // schedule_fresh: offer the next trace transaction.
            if let Some(&next) = order.get(cursor) {
                cursor += 1;
                arr_index = next as usize;
                arr_txn = trace.get(arr_index);
                arr_slot = CompletionSlot::new((arr_txn.arrival_ns as f64).max(now), next_seq);
                next_seq += 1;
            } else {
                arr_slot = CompletionSlot::idle();
            }
        } else {
            // Event::Complete.
            slots[bank] = CompletionSlot::idle();
            let lane = &mut lanes[bank];
            let served = in_flight[bank];
            let txn = trace.get(served.trace_index as usize);
            let arrival_ns = txn.arrival_ns as f64;
            lane.stats.completed += 1;
            let sojourn_ns = now - arrival_ns;
            lane.stats.sojourn.observe(sojourn_ns);
            completions.push(Completion {
                trace_index: served.trace_index as usize,
                bank,
                op: txn.op,
                arrival_ns,
                admit_ns: served.admit_ns,
                start_ns: served.start_ns,
                complete_ns: now,
            });
            // try_dispatch under FCFS: the head is the choice.
            if let Some(head) = {
                lane.stats.depth_time_ns += rings[bank].len() as f64 * (now - lane.last_change_ns);
                lane.last_change_ns = now;
                rings[bank].pop_front()
            } {
                let txn = trace.get(head.trace_index as usize);
                let complete_ns =
                    fast_start_service(lane, &mut banks[bank], faults, &txn, head.admit_ns, now);
                in_flight[bank] = FastInFlight {
                    trace_index: head.trace_index,
                    admit_ns: head.admit_ns,
                    start_ns: now,
                };
                slots[bank] = CompletionSlot::new(complete_ns, next_seq);
                next_seq += 1;
            }
        }
    }
    end_ns
}

/// Re-offers the lane's oldest parked retry if a queue slot is now free.
///
/// A parked transaction polls on the grid `p0, p0 + d, p0 + 2d, …` fixed
/// when it parked. The queue stayed full at every grid point before `now`
/// (this function runs at every queue-shrink instant), so those polls all
/// failed: their count is reconstructed arithmetically and the re-offer
/// lands on the first grid point at or after `now`. If a fresh arrival
/// steals the slot first, the re-offer parks again at the back of the FIFO.
fn wake_parked(
    lane: &mut Lane,
    events: &mut EventQueue<Event>,
    backpressure: Backpressure,
    now: f64,
) {
    let Backpressure::Retry { delay_ns } = backpressure else {
        return;
    };
    if lane.queue.is_full() {
        return;
    }
    let Some(parked) = lane.parked.pop_front() else {
        return;
    };
    let mut next_poll = parked.next_poll_ns;
    if now > next_poll {
        // Grid points in [next_poll, now) all polled a full queue.
        let skipped = ((now - next_poll) / delay_ns).ceil();
        lane.stats.retried_admissions += skipped as u64;
        next_poll += skipped * delay_ns;
    }
    events.schedule(
        next_poll,
        Event::Arrive {
            trace_index: parked.trace_index as usize,
            fresh: false,
        },
    );
}

/// Admits a transaction into a lane's waiting queue at `now`.
fn admit(lane: &mut Lane, txn: Transaction, trace_index: usize, now: f64) {
    lane.stats.admitted += 1;
    lane.flush_occupancy(now);
    lane.queue.admit(Queued {
        txn,
        trace_index,
        arrival_ns: txn.arrival_ns as f64,
        admit_ns: now,
    });
    lane.stats.max_depth = lane.stats.max_depth.max(lane.queue.len() as u64);
}

/// If the bank is idle and has waiting work, picks the next transaction per
/// `policy` and starts serving it.
fn try_dispatch(
    lane: &mut Lane,
    bank: &mut Bank,
    faults: &FaultPlan,
    events: &mut EventQueue<Event>,
    policy: Policy,
    now: f64,
) {
    if lane.in_service.is_some() || lane.scrub_busy || lane.march_busy || lane.calib_busy {
        return;
    }
    let Some(index) = policy.choose(&mut lane.queue) else {
        return;
    };
    lane.flush_occupancy(now);
    let queued = lane.queue.take(index);
    let bank_index = queued.txn.bank;
    let complete_ns = start_service(lane, bank, faults, queued, now);
    events.schedule(complete_ns, Event::Complete { bank: bank_index });
}

/// Runs `Bank::execute` for `queued` and returns the completion instant
/// `now + service time` for the caller to schedule. The service time is
/// whatever the bank actually charged (attempt-dependent), read off its
/// busy-time accumulator.
fn start_service(
    lane: &mut Lane,
    bank: &mut Bank,
    faults: &FaultPlan,
    queued: Queued,
    now: f64,
) -> f64 {
    lane.stats.wait_ns.push(now - queued.admit_ns);
    let busy_before = bank.telemetry().busy_time;
    bank.execute(&queued.txn, faults);
    let service_ns = (bank.telemetry().busy_time - busy_before).get() * 1e9;
    lane.in_service = Some(InService {
        queued,
        start_ns: now,
    });
    now + service_ns
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ControllerConfig;
    use crate::reliability::EccMode;
    use crate::txn::Trace;
    use crate::workload::Workload;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stt_sense::SchemeKind;

    fn timed_trace(config: &ControllerConfig, ops: usize, gap_ns: f64) -> Trace {
        Workload::Uniform { read_fraction: 0.7 }
            .generate(config.footprint(), ops, &mut StdRng::seed_from_u64(11))
            .with_poisson_arrivals(gap_ns, &mut StdRng::seed_from_u64(12))
    }

    fn frontend_run(config: FrontendConfig, gap_ns: f64) -> SchedRun {
        let controller_config = ControllerConfig::small(SchemeKind::Nondestructive, 3);
        let trace = timed_trace(&controller_config, 600, gap_ns);
        Frontend::new(Controller::new(controller_config), config).run(&trace)
    }

    #[test]
    fn every_offered_transaction_completes_without_bounds() {
        let run = frontend_run(FrontendConfig::fcfs_unbounded(), 10.0);
        assert_eq!(run.completions.len(), 600);
        let queue = run.telemetry.aggregate().queue;
        assert_eq!(queue.completed, 600);
        assert_eq!(queue.admitted, 600);
        assert_eq!(queue.dropped + queue.stalls + queue.retried_admissions, 0);
        assert!(run.makespan_ns > 0.0);
        assert!(run.ops_per_second() > 0.0);
    }

    #[test]
    fn runs_are_deterministic() {
        let config = FrontendConfig::fcfs_unbounded().with_policy(Policy::ReadPriority {
            write_high_water: 4,
        });
        let a = frontend_run(config, 5.0);
        let b = frontend_run(config, 5.0);
        assert_eq!(a, b);
    }

    #[test]
    fn completions_are_causally_ordered() {
        let run = frontend_run(FrontendConfig::fcfs_unbounded(), 8.0);
        for completion in &run.completions {
            assert!(completion.admit_ns >= completion.arrival_ns);
            assert!(completion.start_ns >= completion.admit_ns);
            assert!(completion.complete_ns >= completion.start_ns);
            assert!(completion.sojourn_ns() >= completion.wait_ns());
        }
        // Completion log is in completion-time order.
        assert!(run
            .completions
            .complete_ns()
            .windows(2)
            .all(|w| w[0] <= w[1]));
        // Columns decode back to the same rows the iterator yields.
        assert_eq!(
            run.completions.get(0),
            run.completions.iter().next().unwrap()
        );
    }

    #[test]
    fn drop_backpressure_bounds_the_queue_and_counts_losses() {
        let config = FrontendConfig::fcfs_unbounded()
            .with_queue_depth(4)
            .with_backpressure(Backpressure::Drop);
        // Offered load far beyond service rate (~14 ns reads, 1 ns gaps).
        let run = frontend_run(config, 1.0);
        let queue = run.telemetry.aggregate().queue;
        assert!(queue.dropped > 0, "saturation must drop");
        assert!(queue.max_depth <= 4);
        assert_eq!(queue.completed + queue.dropped, 600);
    }

    #[test]
    fn stall_backpressure_completes_everything_late() {
        let config = FrontendConfig::fcfs_unbounded()
            .with_queue_depth(4)
            .with_backpressure(Backpressure::Stall);
        let run = frontend_run(config, 1.0);
        let queue = run.telemetry.aggregate().queue;
        assert_eq!(queue.completed, 600, "stalling loses nothing");
        assert!(queue.stalls > 0);
        assert!(queue.stall_time_ns > 0.0);
        assert!(queue.max_depth <= 4);
    }

    #[test]
    fn retry_backpressure_completes_everything_with_reoffers() {
        let config = FrontendConfig::fcfs_unbounded()
            .with_queue_depth(4)
            .with_backpressure(Backpressure::Retry { delay_ns: 50.0 });
        let run = frontend_run(config, 1.0);
        let queue = run.telemetry.aggregate().queue;
        assert_eq!(queue.completed, 600, "retrying loses nothing");
        assert!(queue.retried_admissions > 0);
        assert!(queue.max_depth <= 4);
    }

    #[test]
    fn occupancy_accounting_is_consistent() {
        let run = frontend_run(FrontendConfig::fcfs_unbounded(), 2.0);
        let queue = run.telemetry.aggregate().queue;
        assert!(queue.mean_depth() > 0.0, "overload must queue");
        assert!(queue.horizon_ns > 0.0);
        assert!(queue.max_depth as f64 >= queue.mean_depth() / 3.0);
    }

    #[test]
    fn empty_trace_is_a_no_op() {
        let config = ControllerConfig::small(SchemeKind::Nondestructive, 2);
        let mut frontend = Frontend::new(Controller::new(config), FrontendConfig::default());
        let run = frontend.run(&Trace::new());
        assert_eq!(run.completions.len(), 0);
        assert_eq!(run.makespan_ns, 0.0);
        assert_eq!(run.ops_per_second(), 0.0);
    }

    #[test]
    fn state_persists_across_runs() {
        let config = ControllerConfig::small(SchemeKind::Nondestructive, 2);
        let trace = timed_trace(&config, 100, 20.0);
        let mut frontend = Frontend::new(Controller::new(config), FrontendConfig::default());
        frontend.run(&trace);
        let second = frontend.run(&trace);
        assert_eq!(second.telemetry.transactions(), 200);
        assert_eq!(second.telemetry.aggregate().queue.completed, 200);
    }

    #[test]
    #[should_panic(expected = "targets bank")]
    fn out_of_range_bank_panics() {
        let config = ControllerConfig::small(SchemeKind::Nondestructive, 2);
        let mut frontend = Frontend::new(Controller::new(config), FrontendConfig::default());
        let mut trace = Trace::new();
        trace.push(Transaction::read(9, stt_array::Address::new(0, 0)));
        frontend.run(&trace);
    }

    #[test]
    fn scrub_runs_in_idle_gaps() {
        let controller_config =
            ControllerConfig::small(SchemeKind::Nondestructive, 2).with_ecc(EccMode::Secded);
        let trace = timed_trace(&controller_config, 60, 2000.0);
        let config = FrontendConfig::fcfs_unbounded().with_scrub(ScrubConfig::every_ns(500.0));
        let run = Frontend::new(Controller::new(controller_config), config).run(&trace);
        assert_eq!(run.completions.len(), 60);
        let aggregate = run.telemetry.aggregate();
        assert!(
            aggregate.ecc.scrub_words_scanned > 0,
            "sparse traffic leaves idle gaps the daemon must use"
        );
        assert!(
            aggregate.ecc.scrub_passes > 0,
            "small banks get full passes"
        );
    }

    #[test]
    fn scrub_defers_to_demand_under_saturation() {
        let controller_config =
            ControllerConfig::small(SchemeKind::Nondestructive, 2).with_ecc(EccMode::Secded);
        // 1 ns gaps against ~14 ns reads: a demand transaction is always
        // waiting, so arbitration never picks the background class.
        let trace = timed_trace(&controller_config, 400, 1.0);
        let config = FrontendConfig::fcfs_unbounded().with_scrub(ScrubConfig::every_ns(20.0));
        let run = Frontend::new(Controller::new(controller_config), config).run(&trace);
        let aggregate = run.telemetry.aggregate();
        assert_eq!(aggregate.queue.completed, 400, "scrub must not lose demand");
        assert!(
            aggregate.queue.scrub_deferred > 0,
            "saturation must defer scrub ticks"
        );
    }

    #[test]
    fn scrub_with_no_faults_leaves_demand_traffic_bit_identical() {
        let controller_config =
            ControllerConfig::small(SchemeKind::Nondestructive, 2).with_ecc(EccMode::Secded);
        let trace = timed_trace(&controller_config, 200, 40.0);
        let mut plain = Frontend::new(
            Controller::new(controller_config.clone()),
            FrontendConfig::fcfs_unbounded(),
        );
        let mut scrubbed = Frontend::new(
            Controller::new(controller_config),
            FrontendConfig::fcfs_unbounded().with_scrub(ScrubConfig::every_ns(100.0)),
        );
        let a = plain.run(&trace);
        let b = scrubbed.run(&trace);
        assert_eq!(
            plain.controller().stored_state(),
            scrubbed.controller().stored_state(),
            "a healthy-array scrub must not disturb stored bits"
        );
        let (qa, qb) = (a.telemetry.aggregate(), b.telemetry.aggregate());
        assert_eq!(qa.misreads, qb.misreads);
        assert_eq!(qa.read_retries, qb.read_retries);
        assert!(qb.ecc.scrub_words_scanned > 0, "the daemon did run");
    }

    #[test]
    #[should_panic(expected = "scrub daemon requires ECC")]
    fn scrub_without_ecc_is_rejected() {
        let config = ControllerConfig::small(SchemeKind::Nondestructive, 1);
        let _ = Frontend::new(
            Controller::new(config),
            FrontendConfig::fcfs_unbounded().with_scrub(ScrubConfig::every_ns(100.0)),
        );
    }

    #[test]
    fn march_source_drains_with_an_empty_trace() {
        let config = ControllerConfig::small(SchemeKind::Nondestructive, 2).with_seed(5);
        let cells = config.spec.capacity_bits() as u64;
        let mut frontend = Frontend::new(
            Controller::new(config),
            FrontendConfig::fcfs_unbounded().with_march(MarchConfig::new(MarchAlgorithm::CMinus)),
        );
        let run = frontend.run(&Trace::new());
        let aggregate = run.telemetry.aggregate();
        assert_eq!(aggregate.march.ops, 2 * 10 * cells, "both banks, 10n each");
        assert_eq!(aggregate.march.mismatches, 0, "healthy cells must pass");
        assert!(run.makespan_ns > 0.0, "test time is the makespan");
        assert_eq!(run.completions.len(), 0, "no demand was offered");
    }

    #[test]
    fn march_defers_to_demand_and_still_finishes() {
        let controller_config = ControllerConfig::small(SchemeKind::Nondestructive, 2).with_seed(5);
        let cells = controller_config.spec.capacity_bits() as u64;
        // 1 ns gaps against ~14 ns reads: a demand transaction is always
        // waiting, so every test op runs strictly in a demand-idle gap.
        let trace = timed_trace(&controller_config, 200, 1.0);
        let mut frontend = Frontend::new(
            Controller::new(controller_config),
            FrontendConfig::fcfs_unbounded().with_march(MarchConfig::new(MarchAlgorithm::CMinus)),
        );
        let run = frontend.run(&trace);
        let aggregate = run.telemetry.aggregate();
        assert_eq!(aggregate.queue.completed, 200, "test must not lose demand");
        assert_eq!(
            aggregate.march.ops,
            2 * 10 * cells,
            "the full test still ran"
        );
        assert!(
            aggregate.queue.march_deferred > 0,
            "saturation must defer test ops"
        );
    }

    #[test]
    fn march_outranks_scrub_in_idle_gaps() {
        let controller_config = ControllerConfig::small(SchemeKind::Nondestructive, 2)
            .with_ecc(EccMode::Secded)
            .with_seed(5);
        let config = FrontendConfig::fcfs_unbounded()
            .with_scrub(ScrubConfig::every_ns(50.0))
            .with_march(MarchConfig::new(MarchAlgorithm::Ss));
        let run = Frontend::new(Controller::new(controller_config), config).run(&Trace::new());
        let aggregate = run.telemetry.aggregate();
        assert!(aggregate.march.ops > 0, "the test ran");
        assert!(
            aggregate.queue.scrub_deferred > 0,
            "back-to-back test ops leave scrub no gap"
        );
    }

    #[test]
    #[should_panic(expected = "retry delay")]
    fn non_positive_retry_delay_is_rejected() {
        let config = ControllerConfig::small(SchemeKind::Nondestructive, 1);
        let _ = Frontend::new(
            Controller::new(config),
            FrontendConfig::fcfs_unbounded()
                .with_backpressure(Backpressure::Retry { delay_ns: 0.0 }),
        );
    }

    use crate::calib::CalibConfig as Calib;
    use crate::faults::{DriftPlan, ThermalTransient};

    /// A 2-bank controller with a standing +60 K hot-spot on bank 0 — the
    /// same operating point the bank-level calibration tests use: static β
    /// misreads every stored 1 on bank 0, a refit β restores correctness.
    fn hot_controller_config() -> ControllerConfig {
        ControllerConfig::small(SchemeKind::Nondestructive, 2)
            .with_seed(77)
            .with_drift(DriftPlan::quiet().with_transient(ThermalTransient {
                bank: 0,
                start_ns: 0.0,
                ramp_ns: 0.0,
                hold_ns: 1e12,
                fall_ns: 0.0,
                amplitude_k: 60.0,
            }))
    }

    #[test]
    fn calibration_daemon_trips_in_idle_gaps_and_recovers_misreads() {
        let controller_config = hot_controller_config();
        let trace = timed_trace(&controller_config, 400, 200.0);
        let static_run = Frontend::new(
            Controller::new(controller_config.clone()),
            FrontendConfig::fcfs_unbounded(),
        )
        .run(&trace);
        let calibrated_run = Frontend::new(
            Controller::new(controller_config),
            FrontendConfig::fcfs_unbounded().with_calib(Calib::date2010()),
        )
        .run(&trace);
        assert_eq!(calibrated_run.completions.len(), 400);
        let calibrated = calibrated_run.telemetry.aggregate();
        let statics = static_run.telemetry.aggregate();
        assert!(calibrated.calib.trips >= 1, "drifted bank 0 must trip");
        assert_eq!(calibrated.calib.bursts, calibrated.calib.trips);
        assert_eq!(calibrated.calib.refits, calibrated.calib.trips);
        assert!(calibrated.calib.busy_time.get() > 0.0);
        assert!(
            calibrated.calib.last_beta > 1.9 && calibrated.calib.last_beta < 2.3,
            "refit beta near the paper's operating point, got {}",
            calibrated.calib.last_beta
        );
        assert!(
            calibrated.misreads * 2 < statics.misreads,
            "the daemon must recover most of the misread rate \
             (static {}, calibrated {})",
            statics.misreads,
            calibrated.misreads
        );
    }

    #[test]
    fn calibration_defers_to_demand_under_saturation() {
        let controller_config = hot_controller_config();
        // 1 ns gaps against ~14 ns reads: a demand transaction is always
        // waiting, so arbitration never grants the calibration class a slot.
        let trace = timed_trace(&controller_config, 400, 1.0);
        let run = Frontend::new(
            Controller::new(controller_config),
            FrontendConfig::fcfs_unbounded().with_calib(Calib::date2010()),
        )
        .run(&trace);
        let aggregate = run.telemetry.aggregate();
        assert_eq!(
            aggregate.queue.completed, 400,
            "calibration must not lose demand"
        );
        assert!(
            aggregate.queue.calib_deferred > 0,
            "saturation must defer calibration checks"
        );
    }

    #[test]
    fn calibration_bursts_never_reorder_or_drop_demand() {
        let controller_config = hot_controller_config();
        let trace = timed_trace(&controller_config, 400, 200.0);
        let plain = Frontend::new(
            Controller::new(controller_config.clone()),
            FrontendConfig::fcfs_unbounded(),
        )
        .run(&trace);
        let calibrated = Frontend::new(
            Controller::new(controller_config),
            FrontendConfig::fcfs_unbounded().with_calib(Calib::date2010()),
        )
        .run(&trace);
        assert_eq!(calibrated.completions.len(), plain.completions.len());
        // Same transactions served, and within each bank in the same order:
        // a burst may delay a completion, never displace or drop one.
        for bank in 0..2 {
            let order = |run: &SchedRun| {
                run.completions
                    .iter()
                    .filter(|completion| completion.bank == bank)
                    .map(|completion| completion.trace_index)
                    .collect::<Vec<_>>()
            };
            assert_eq!(
                order(&plain),
                order(&calibrated),
                "bank {bank}: per-bank demand order must survive bursts"
            );
        }
    }

    #[test]
    fn calibration_on_a_quiet_plan_leaves_demand_bit_identical() {
        // Process variation leaves a few cells inside the guard band even
        // without drift, so the daemon may trip — but a quiet-plan refit
        // lands back on the nominal design, and the burst draws from its
        // own RNG stream, so demand traffic must be unaffected either way.
        let controller_config = ControllerConfig::small(SchemeKind::Nondestructive, 2);
        let trace = timed_trace(&controller_config, 200, 100.0);
        let mut plain = Frontend::new(
            Controller::new(controller_config.clone()),
            FrontendConfig::fcfs_unbounded(),
        );
        let mut calibrated = Frontend::new(
            Controller::new(controller_config),
            FrontendConfig::fcfs_unbounded().with_calib(Calib::date2010()),
        );
        let a = plain.run(&trace);
        let b = calibrated.run(&trace);
        let (qa, qb) = (a.telemetry.aggregate(), b.telemetry.aggregate());
        assert_eq!(qb.queue.completed, 200);
        assert_eq!(qa.misreads, qb.misreads);
        assert_eq!(qa.read_retries, qb.read_retries);
        assert_eq!(
            plain.controller().stored_state(),
            calibrated.controller().stored_state(),
            "calibration bursts are read-only"
        );
        if qb.calib.refits > 0 {
            let drift = (qb.calib.last_beta - 2.1301).abs();
            assert!(
                drift < 1e-3,
                "a quiet-plan refit must land on the nominal beta, got {}",
                qb.calib.last_beta
            );
        }
    }

    #[test]
    #[should_panic(expected = "not both")]
    fn inline_and_frontend_calibration_are_mutually_exclusive() {
        let config = hot_controller_config().with_calib(Calib::date2010());
        let _ = Frontend::new(
            Controller::new(config),
            FrontendConfig::fcfs_unbounded().with_calib(Calib::date2010()),
        );
    }
}
