//! Manufacturing-test subsystem: March algorithms over the real banks.
//!
//! Memory manufacturers screen parts with **March tests**: walk the whole
//! array in prescribed address orders, writing and read-verifying a data
//! background, so that every modeled defect produces at least one
//! mismatching read. This module provides
//!
//! * [`program`] — the algorithm library ([`march_c_minus`], [`march_ss`])
//!   as data ([`MarchProgram`]: elements of address order × op sequence)
//!   and its deterministic lowering to per-cell [`MarchStep`] schedules;
//! * [`runner`] — [`run_march`]: drive a lowered program through
//!   [`Bank::execute_march_op`](crate::bank::Bank::execute_march_op) on
//!   every bank of a [`Controller`](crate::engine::Controller), serially
//!   or one thread per bank, bit-identically;
//! * [`campaign`] — [`run_escape_campaign`]: fault class × sensing scheme
//!   × protection level × algorithm → detection rate, escape rate and test
//!   time, with the textbook coverage guarantees asserted.
//!
//! Verdicts come from the **real sensing path**: a March read senses
//! through the bank's configured scheme (and, under ECC, observes the
//! *decoded* word exactly as a host would), so "does March C– catch a
//! pinhole under the nondestructive scheme?" is answered by the same
//! margin arithmetic that serves demand traffic, not by a shortcut fault
//! simulator.

pub mod campaign;
pub mod program;
pub mod runner;

pub use campaign::{
    run_escape_campaign, EscapeRow, FaultClass, MarchCampaignConfig, PlantedDefect,
};
pub use program::{
    march_c_minus, march_ss, AddressOrder, DataBackground, MarchAlgorithm, MarchElement, MarchOp,
    MarchProgram, MarchStep,
};
pub use runner::{run_march, run_march_with};
