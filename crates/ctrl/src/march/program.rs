//! March-test programs and their lowering to per-cell operation schedules.
//!
//! A March test is a sequence of *elements*; each element walks every cell
//! of the array in a prescribed address order and applies the same short
//! sequence of read/write operations to each cell before moving on. The
//! notation `⇑(r0,w1)` means "ascending over all cells: read expecting 0,
//! then write 1". Because every element touches every cell, a program with
//! k operations across its elements costs exactly `k·n` operations on an
//! n-cell array — the figure of merit test engineers quote (March C– is
//! "a 10n test").

use serde::{Deserialize, Serialize};

/// One March operation applied to the current cell of an element walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MarchOp {
    /// Read the cell and compare against the expected bit; a mismatch marks
    /// the cell as failing.
    R(bool),
    /// Write the bit through the bank's real write datapath.
    W(bool),
}

/// The address order of one element's walk over the cell array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AddressOrder {
    /// Ascending row-major (`⇑`).
    Up,
    /// Descending row-major (`⇓`).
    Down,
    /// Either order is permitted (`⇕`); lowering picks ascending.
    Any,
}

/// One March element: an address order and the operations applied to each
/// cell of the walk.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MarchElement {
    /// Walk direction over the cell array.
    pub order: AddressOrder,
    /// Operations applied, in sequence, to every cell the walk visits.
    pub ops: Vec<MarchOp>,
}

/// A complete March algorithm as a sequence of elements.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MarchProgram {
    /// Human-readable algorithm name (`"March C-"`).
    pub name: &'static str,
    /// The elements, applied in order.
    pub elements: Vec<MarchElement>,
}

/// One lowered March operation: element `element` of the program applies
/// `op` to row-major cell `cell`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MarchStep {
    /// Row-major cell index within the bank.
    pub cell: u32,
    /// The operation.
    pub op: MarchOp,
    /// Index of the element this step belongs to (for fail attribution).
    pub element: u8,
}

/// The data background a March run is executed against.
///
/// Classic March notation is defined over a *solid* background (`w0`
/// writes 0 everywhere). Re-reading `0`/`1` as "background value" /
/// "inverse background value" preserves every detection property of the
/// algorithm while letting the tester sensitise defects a solid pattern
/// can't: inter-word coupling faults need neighbouring cells to hold
/// *opposite* values while the aggressor toggles, which a checkerboard
/// provides by construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum DataBackground {
    /// All-zeros base pattern — the textbook lowering.
    #[default]
    Solid,
    /// Physical checkerboard: cell `(row, col)` starts at `(row + col) & 1`,
    /// so every cell's four physical neighbours hold its complement.
    Checkerboard,
    /// `0x55` stripes along the row-major word order: odd cells hold 1 —
    /// adjacent cells *within a word* alternate, the pattern datasheets
    /// call a 55/AA sweep.
    Alt55,
}

impl DataBackground {
    /// Every background in the library.
    pub const ALL: [DataBackground; 3] = [
        DataBackground::Solid,
        DataBackground::Checkerboard,
        DataBackground::Alt55,
    ];

    /// Display name (CSV-friendly).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DataBackground::Solid => "solid",
            DataBackground::Checkerboard => "checkerboard",
            DataBackground::Alt55 => "alt55",
        }
    }

    /// The background bit of row-major `cell` on a `cols`-wide array.
    #[must_use]
    pub fn bit(self, cell: u32, cols: u32) -> bool {
        match self {
            DataBackground::Solid => false,
            DataBackground::Checkerboard => {
                let row = cell / cols;
                let col = cell % cols;
                (row + col) & 1 == 1
            }
            DataBackground::Alt55 => cell & 1 == 1,
        }
    }
}

/// Which March algorithm to run — the `Copy` handle configuration structs
/// carry; [`MarchAlgorithm::program`] builds the full description.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MarchAlgorithm {
    /// March C–: `{⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)}`,
    /// the classic 10n test. Detects all stuck-at and transition faults and
    /// state coupling faults, but performs only *transition* writes after
    /// its initialisation element — so it provably cannot sensitise
    /// disturb coupling faults triggered by non-transition writes.
    CMinus,
    /// March SS: a 22n test whose elements repeat reads and add
    /// **non-transition writes** (`…,w0,…` on a cell holding 0, `…,w1,…`
    /// on a cell holding 1), the sensitising sequence disturb coupling
    /// faults (CFds) require.
    Ss,
}

impl MarchAlgorithm {
    /// Every algorithm in the library.
    pub const ALL: [MarchAlgorithm; 2] = [MarchAlgorithm::CMinus, MarchAlgorithm::Ss];

    /// The algorithm's display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MarchAlgorithm::CMinus => "March C-",
            MarchAlgorithm::Ss => "March SS",
        }
    }

    /// Builds the full program description.
    #[must_use]
    pub fn program(self) -> MarchProgram {
        match self {
            MarchAlgorithm::CMinus => march_c_minus(),
            MarchAlgorithm::Ss => march_ss(),
        }
    }
}

/// Shorthand element constructor.
fn element(order: AddressOrder, ops: &[MarchOp]) -> MarchElement {
    MarchElement {
        order,
        ops: ops.to_vec(),
    }
}

/// March C–: `{⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)}`.
#[must_use]
pub fn march_c_minus() -> MarchProgram {
    use AddressOrder::{Any, Down, Up};
    use MarchOp::{R, W};
    MarchProgram {
        name: "March C-",
        elements: vec![
            element(Any, &[W(false)]),
            element(Up, &[R(false), W(true)]),
            element(Up, &[R(true), W(false)]),
            element(Down, &[R(false), W(true)]),
            element(Down, &[R(true), W(false)]),
            element(Any, &[R(false)]),
        ],
    }
}

/// March SS:
/// `{⇕(w0); ⇑(r0,r0,w0,r0,w1); ⇑(r1,r1,w1,r1,w0); ⇓(r0,r0,w0,r0,w1);
/// ⇓(r1,r1,w1,r1,w0); ⇕(r0)}`.
#[must_use]
pub fn march_ss() -> MarchProgram {
    use AddressOrder::{Any, Down, Up};
    use MarchOp::{R, W};
    MarchProgram {
        name: "March SS",
        elements: vec![
            element(Any, &[W(false)]),
            element(Up, &[R(false), R(false), W(false), R(false), W(true)]),
            element(Up, &[R(true), R(true), W(true), R(true), W(false)]),
            element(Down, &[R(false), R(false), W(false), R(false), W(true)]),
            element(Down, &[R(true), R(true), W(true), R(true), W(false)]),
            element(Any, &[R(false)]),
        ],
    }
}

impl MarchProgram {
    /// Operations per cell (`10` for March C–): the `k` of the `k·n` cost.
    #[must_use]
    pub fn ops_per_cell(&self) -> usize {
        self.elements.iter().map(|e| e.ops.len()).sum()
    }

    /// Lowers the program to a flat per-cell schedule over `cells` cells.
    ///
    /// Each element expands to its full walk before the next element
    /// starts — the March contract — and `Any` orders lower ascending, so
    /// the schedule is a pure function of `(program, cells)` and identical
    /// across serial and sharded dispatch.
    #[must_use]
    pub fn lower(&self, cells: u32) -> Vec<MarchStep> {
        self.lower_with_background(cells, 1, DataBackground::Solid)
    }

    /// Lowers the program onto a data background: every `0`/`1` in the
    /// notation is reinterpreted as "background value of the cell" / "its
    /// complement", i.e. each step's bit is XORed with
    /// [`DataBackground::bit`]. A [`DataBackground::Solid`] lowering equals
    /// [`MarchProgram::lower`] exactly.
    ///
    /// # Panics
    ///
    /// Panics if `cols` is zero (the checkerboard needs the array's
    /// physical width).
    #[must_use]
    pub fn lower_with_background(
        &self,
        cells: u32,
        cols: u32,
        background: DataBackground,
    ) -> Vec<MarchStep> {
        assert!(cols > 0, "a data background needs a nonzero array width");
        let mut steps = Vec::with_capacity(self.ops_per_cell() * cells as usize);
        for (index, element) in self.elements.iter().enumerate() {
            let element_id = u8::try_from(index).expect("March programs have few elements");
            let walk: Box<dyn Iterator<Item = u32>> = match element.order {
                AddressOrder::Up | AddressOrder::Any => Box::new(0..cells),
                AddressOrder::Down => Box::new((0..cells).rev()),
            };
            for cell in walk {
                let base = background.bit(cell, cols);
                for &op in &element.ops {
                    let op = match op {
                        MarchOp::R(expected) => MarchOp::R(expected ^ base),
                        MarchOp::W(bit) => MarchOp::W(bit ^ base),
                    };
                    steps.push(MarchStep {
                        cell,
                        op,
                        element: element_id,
                    });
                }
            }
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn march_c_minus_is_a_10n_test() {
        let program = march_c_minus();
        assert_eq!(program.ops_per_cell(), 10);
        assert_eq!(program.lower(64).len(), 640);
    }

    #[test]
    fn march_ss_is_a_22n_test() {
        let program = march_ss();
        assert_eq!(program.ops_per_cell(), 22);
        assert_eq!(program.lower(10).len(), 220);
    }

    #[test]
    fn lowering_expands_each_element_fully_before_the_next() {
        let program = march_c_minus();
        let steps = program.lower(4);
        // Element 0 (⇕ w0) covers cells 0..4 ascending first.
        assert_eq!(steps[0].cell, 0);
        assert_eq!(steps[3].cell, 3);
        assert!(steps[..4].iter().all(|s| s.element == 0));
        // Element 3 (⇓) walks descending.
        let down: Vec<u32> = steps
            .iter()
            .filter(|s| s.element == 3)
            .map(|s| s.cell)
            .collect();
        assert_eq!(down, [3, 3, 2, 2, 1, 1, 0, 0]);
    }

    #[test]
    fn march_ss_contains_non_transition_writes_and_c_minus_does_not() {
        // The CFds coverage argument, checked structurally: after the
        // initialisation element, March C– only ever writes the complement
        // of the value it just read (transition writes), while March SS
        // rewrites the value it read (non-transition writes).
        for (program, expect_non_transition) in [(march_c_minus(), false), (march_ss(), true)] {
            let mut found = false;
            for element in &program.elements[1..] {
                let mut last_read: Option<bool> = None;
                for &op in &element.ops {
                    match op {
                        MarchOp::R(expected) => last_read = Some(expected),
                        MarchOp::W(bit) => {
                            if last_read == Some(bit) {
                                found = true;
                            }
                        }
                    }
                }
            }
            assert_eq!(found, expect_non_transition, "{}", program.name);
        }
    }

    #[test]
    fn solid_background_lowering_is_the_textbook_lowering() {
        let program = march_c_minus();
        assert_eq!(
            program.lower(64),
            program.lower_with_background(64, 8, DataBackground::Solid)
        );
    }

    #[test]
    fn checkerboard_background_alternates_neighbouring_cells() {
        // On a 4-wide array, cells 0 and 1 are physical row neighbours and
        // must start at opposite values; cells 3 and 4 wrap to the next row
        // (col 3 → col 0) and both land on background 1.
        let program = march_c_minus();
        let steps = program.lower_with_background(8, 4, DataBackground::Checkerboard);
        let init: Vec<MarchOp> = steps[..8].iter().map(|s| s.op).collect();
        assert_eq!(
            init,
            [
                MarchOp::W(false),
                MarchOp::W(true),
                MarchOp::W(false),
                MarchOp::W(true),
                MarchOp::W(true),
                MarchOp::W(false),
                MarchOp::W(true),
                MarchOp::W(false),
            ]
        );
        // Reads expect the same XORed pattern: element 1 on cell 1 is
        // (r0,w1) over background 1 → (r1,w0).
        let cell1: Vec<MarchOp> = steps
            .iter()
            .filter(|s| s.element == 1 && s.cell == 1)
            .map(|s| s.op)
            .collect();
        assert_eq!(cell1, [MarchOp::R(true), MarchOp::W(false)]);
    }

    #[test]
    fn alt55_background_follows_cell_parity_not_geometry() {
        let bg = DataBackground::Alt55;
        for cols in [1, 4, 64] {
            assert!(!bg.bit(0, cols));
            assert!(bg.bit(1, cols));
            assert!(!bg.bit(2, cols));
        }
        assert_eq!(DataBackground::default(), DataBackground::Solid);
        assert_eq!(DataBackground::ALL.len(), 3);
    }

    #[test]
    fn every_algorithm_handle_matches_its_program() {
        assert_eq!(MarchAlgorithm::CMinus.program(), march_c_minus());
        assert_eq!(MarchAlgorithm::Ss.program(), march_ss());
        assert_eq!(MarchAlgorithm::CMinus.name(), "March C-");
        assert_eq!(MarchAlgorithm::Ss.name(), "March SS");
    }
}
