//! Escape-rate campaigns: which fault classes does each sensing scheme ×
//! protection level × March algorithm catch, and at what test time?
//!
//! Every campaign cell plants one fault class (at deterministically seeded
//! positions), runs one March algorithm through the scheduler frontend as
//! test-class traffic, and scores **detection** — the fraction of planted
//! victim cells that appear in the tester's fail bitmap. The textbook
//! coverage guarantees are asserted, not just reported:
//!
//! * March C– and March SS catch **all** modeled stuck-at, write
//!   transition, pinhole and state-coupling defects at unprotected banks
//!   (on the variation-clean nondestructive/destructive schemes), at
//!   exactly their `10n` / `22n` op cost;
//! * disturb coupling faults (CFds) escape March C– **completely** — it
//!   performs no non-transition `w1` after initialisation, so the fault is
//!   never sensitised — and are fully caught by March SS, whose
//!   non-transition writes exist for exactly this class;
//! * every other escape at unprotected clean-scheme cells is a hard error.
//!
//! Backhopping is probabilistic (each completed write hops back with
//! probability `p`), so its detection rate is reported, never asserted.
//! Under ECC the March read observes the *decoded* word — the codec
//! corrects single-cell defects away, so classes ECC can absorb
//! legitimately escape the test at those protection levels: manufacturing
//! test must run **before** enabling protection, and the matrix measures
//! exactly how much coverage is lost otherwise.

use rand::Rng;
use stt_array::{Address, ArraySpec};
use stt_sense::SchemeKind;

use crate::engine::{Controller, ControllerConfig};
use crate::faults::{CouplingKind, FaultPlan};
use crate::march::program::{DataBackground, MarchAlgorithm};
use crate::reliability::{Protection, ScrubConfig, WORD_BITS};
use crate::sched::{Frontend, FrontendConfig, MarchConfig};
use crate::txn::Trace;

/// Seed salt for deterministic defect placement (distinct from the
/// reliability campaign's placement stream).
const MARCH_PLACEMENT_STREAM: u64 = 0x4d41_5243_504c_4143;

/// The modeled manufacturing-defect classes, one per campaign rung.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Stuck-at cell (random stuck value).
    StuckAt,
    /// Write transition fault, rising direction (0→1 writes lost).
    TransitionUp,
    /// Write transition fault, falling direction (1→0 writes lost).
    TransitionDown,
    /// Intra-word state coupling (CFst), random polarities.
    CouplingState,
    /// Intra-word disturb coupling (CFds): non-transition `w1` on the
    /// aggressor forces the victim.
    CouplingDisturb,
    /// Pinhole short: TMR collapse, the cell always senses as "0".
    Pinhole,
    /// Backhopping: completed writes flip back with probability `p`.
    Backhop,
}

impl FaultClass {
    /// Every modeled class, in campaign order.
    pub const ALL: [FaultClass; 7] = [
        FaultClass::StuckAt,
        FaultClass::TransitionUp,
        FaultClass::TransitionDown,
        FaultClass::CouplingState,
        FaultClass::CouplingDisturb,
        FaultClass::Pinhole,
        FaultClass::Backhop,
    ];

    /// Short machine-readable name for table/CSV rows.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::StuckAt => "stuck-at",
            FaultClass::TransitionUp => "wtf-up",
            FaultClass::TransitionDown => "wtf-down",
            FaultClass::CouplingState => "cfst",
            FaultClass::CouplingDisturb => "cfds",
            FaultClass::Pinhole => "pinhole",
            FaultClass::Backhop => "backhop",
        }
    }

    /// `true` when detection is inherently probabilistic, so full coverage
    /// can never be asserted for it.
    #[must_use]
    pub fn is_probabilistic(self) -> bool {
        matches!(self, FaultClass::Backhop)
    }
}

/// One planted defect instance: the cell whose corruption the March test
/// must observe (for coupling faults, the *victim*).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlantedDefect {
    /// Bank the defect lives in.
    pub bank: usize,
    /// Row-major victim cell index within the bank.
    pub victim_cell: u32,
}

/// Everything an escape campaign needs.
#[derive(Debug, Clone, PartialEq)]
pub struct MarchCampaignConfig {
    /// Banks under test (each gets its own planted defects).
    pub banks: usize,
    /// Per-bank array recipe.
    pub spec: ArraySpec,
    /// Master seed: defect placement and every controller in the sweep.
    pub seed: u64,
    /// Sensing schemes to sweep.
    pub schemes: Vec<SchemeKind>,
    /// March algorithms to sweep.
    pub algorithms: Vec<MarchAlgorithm>,
    /// Fault classes to sweep.
    pub classes: Vec<FaultClass>,
    /// Defect instances planted per class per bank.
    pub defects_per_class: usize,
    /// Backhop probability per completed write for the backhop rung.
    pub backhop_prob: f64,
    /// Read modes to sweep: `false` = host-visible (decoded under ECC),
    /// `true` = raw array reads that bypass the codec.
    pub raw_modes: Vec<bool>,
    /// Data backgrounds to sweep.
    pub backgrounds: Vec<DataBackground>,
    /// Scrub tick interval (ns) for the [`Protection::EccScrub`] column.
    pub scrub_interval_ns: f64,
}

impl MarchCampaignConfig {
    /// Default campaign: two 8×64 banks (each row one ECC word — big
    /// enough that four defects per class land in distinct words, small
    /// enough that the 126-cell sweep stays fast), every scheme, both
    /// algorithms, every class, four defects each.
    #[must_use]
    pub fn date2010() -> Self {
        Self {
            banks: 2,
            spec: {
                let mut spec = ArraySpec::date2010_chip();
                spec.rows = 8;
                spec.cols = 64;
                spec.bitline.cells_per_bitline = 8;
                spec
            },
            seed: 2010,
            schemes: SchemeKind::ALL.to_vec(),
            algorithms: MarchAlgorithm::ALL.to_vec(),
            classes: FaultClass::ALL.to_vec(),
            defects_per_class: 4,
            backhop_prob: 0.35,
            raw_modes: vec![false],
            backgrounds: vec![DataBackground::Solid],
            scrub_interval_ns: 25.0,
        }
    }

    /// Overrides the read-mode list (`false` = decoded, `true` = raw).
    #[must_use]
    pub fn with_raw_modes(mut self, raw_modes: Vec<bool>) -> Self {
        self.raw_modes = raw_modes;
        self
    }

    /// Overrides the data-background list.
    #[must_use]
    pub fn with_backgrounds(mut self, backgrounds: Vec<DataBackground>) -> Self {
        self.backgrounds = backgrounds;
        self
    }

    /// Overrides the scheme list.
    #[must_use]
    pub fn with_schemes(mut self, schemes: Vec<SchemeKind>) -> Self {
        self.schemes = schemes;
        self
    }

    /// Overrides the algorithm list.
    #[must_use]
    pub fn with_algorithms(mut self, algorithms: Vec<MarchAlgorithm>) -> Self {
        self.algorithms = algorithms;
        self
    }

    /// Overrides the fault-class list.
    #[must_use]
    pub fn with_classes(mut self, classes: Vec<FaultClass>) -> Self {
        self.classes = classes;
        self
    }

    /// Overrides the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Plants `defects_per_class` instances of `class` in every bank at
    /// deterministically seeded positions (distinct cells; coupling faults
    /// in distinct words) and returns the plan plus the victim bookkeeping
    /// the scorer checks against the fail bitmap.
    #[must_use]
    pub fn plant(&self, class: FaultClass) -> (FaultPlan, Vec<PlantedDefect>) {
        let mut rng = stt_stats::trial_rng(self.seed ^ MARCH_PLACEMENT_STREAM, 0);
        let mut plan = FaultPlan::none();
        let mut planted = Vec::new();
        let words = self.spec.capacity_bits() / WORD_BITS;
        for bank in 0..self.banks {
            match class {
                FaultClass::CouplingState | FaultClass::CouplingDisturb => {
                    let count = self.defects_per_class.min(words);
                    let mut used_words: Vec<usize> = Vec::new();
                    while used_words.len() < count {
                        let word = rng.gen_range(0..words);
                        if used_words.contains(&word) {
                            continue;
                        }
                        used_words.push(word);
                        let aggressor_bit = rng.gen_range(0..WORD_BITS);
                        let victim_bit = loop {
                            let bit = rng.gen_range(0..WORD_BITS);
                            if bit != aggressor_bit {
                                break bit;
                            }
                        };
                        let victim_value = rng.gen_bool(0.5);
                        let kind = if class == FaultClass::CouplingState {
                            CouplingKind::State {
                                aggressor_value: rng.gen_bool(0.5),
                                victim_value,
                            }
                        } else {
                            CouplingKind::Disturb { victim_value }
                        };
                        plan =
                            plan.with_coupling_fault(bank, word, aggressor_bit, victim_bit, kind);
                        planted.push(PlantedDefect {
                            bank,
                            victim_cell: (word * WORD_BITS + victim_bit) as u32,
                        });
                    }
                }
                _ => {
                    let count = self.defects_per_class.min(self.spec.capacity_bits());
                    let mut used: Vec<Address> = Vec::new();
                    while used.len() < count {
                        let addr = Address::new(
                            rng.gen_range(0..self.spec.rows),
                            rng.gen_range(0..self.spec.cols),
                        );
                        if used.contains(&addr) {
                            continue;
                        }
                        used.push(addr);
                        plan = match class {
                            FaultClass::StuckAt => {
                                plan.with_stuck_cell(bank, addr, rng.gen_bool(0.5))
                            }
                            FaultClass::TransitionUp => {
                                plan.with_transition_fault(bank, addr, true)
                            }
                            FaultClass::TransitionDown => {
                                plan.with_transition_fault(bank, addr, false)
                            }
                            FaultClass::Pinhole => plan.with_pinhole(bank, addr),
                            FaultClass::Backhop => plan.with_backhop(bank, addr, self.backhop_prob),
                            FaultClass::CouplingState | FaultClass::CouplingDisturb => {
                                unreachable!("coupling handled above")
                            }
                        };
                        planted.push(PlantedDefect {
                            bank,
                            victim_cell: (addr.row * self.spec.cols + addr.col) as u32,
                        });
                    }
                }
            }
        }
        (plan, planted)
    }
}

/// One cell of the escape sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct EscapeRow {
    /// Planted fault class.
    pub class: FaultClass,
    /// Sensing scheme.
    pub scheme: SchemeKind,
    /// Protection level.
    pub protection: Protection,
    /// March algorithm.
    pub algorithm: MarchAlgorithm,
    /// Whether reads bypassed the ECC codec.
    pub raw: bool,
    /// Data background marched.
    pub background: DataBackground,
    /// Victim cells planted (over all banks).
    pub planted: u64,
    /// Planted victims present in the fail bitmap.
    pub detected: u64,
    /// `detected / planted`.
    pub detection_rate: f64,
    /// `1 − detection_rate`.
    pub escape_rate: f64,
    /// Read-verdict mismatches recorded (may exceed `detected`: one cell
    /// can fail several elements, and non-victim cells can fail too, e.g.
    /// under the conventional scheme's variation floor).
    pub mismatches: u64,
    /// March operations executed over all banks.
    pub march_ops: u64,
    /// Operations per cell (`march_ops / (banks × cells)` — `10.0` for
    /// March C–).
    pub ops_per_bit: f64,
    /// Test time: the slowest bank's March occupancy, in nanoseconds.
    pub test_time_ns: f64,
}

/// Runs the full escape sweep: fault class × scheme × protection ×
/// algorithm, each cell marching through the scheduler frontend. Rows come
/// back in sweep order and are deterministic for a given configuration.
///
/// # Panics
///
/// Panics if a textbook coverage guarantee fails — see the module docs for
/// which (class, algorithm) cells are asserted and which legitimately
/// escape.
#[must_use]
pub fn run_escape_campaign(config: &MarchCampaignConfig) -> Vec<EscapeRow> {
    assert!(config.banks > 0, "campaign needs banks");
    let cells = config.spec.capacity_bits() as u64;
    let mut rows = Vec::new();
    for &class in &config.classes {
        let (plan, planted) = config.plant(class);
        for &scheme in &config.schemes {
            for protection in Protection::ALL {
                for &algorithm in &config.algorithms {
                    for &background in &config.backgrounds {
                        for &raw in &config.raw_modes {
                            let mut controller_config =
                                ControllerConfig::date2010(scheme, config.banks);
                            controller_config.spec = config.spec.clone();
                            let controller_config = controller_config
                                .with_seed(config.seed)
                                .with_faults(plan.clone())
                                .with_ecc(protection.ecc_mode());
                            let mut frontend_config = FrontendConfig::fcfs_unbounded().with_march(
                                MarchConfig::new(algorithm)
                                    .with_background(background)
                                    .with_raw(raw),
                            );
                            if protection.scrubbed() {
                                frontend_config = frontend_config
                                    .with_scrub(ScrubConfig::every_ns(config.scrub_interval_ns));
                            }
                            let mut frontend =
                                Frontend::new(Controller::new(controller_config), frontend_config);
                            let run = frontend.run(&Trace::new());
                            let detected = planted
                                .iter()
                                .filter(|defect| {
                                    run.telemetry.banks[defect.bank]
                                        .march
                                        .failing_cells
                                        .contains(&defect.victim_cell)
                                })
                                .count() as u64;
                            let march_ops: u64 =
                                run.telemetry.banks.iter().map(|bank| bank.march.ops).sum();
                            let test_time_ns = run
                                .telemetry
                                .banks
                                .iter()
                                .map(|bank| bank.march.busy_time.get() * 1e9)
                                .fold(0.0, f64::max);
                            let mismatches: u64 = run
                                .telemetry
                                .banks
                                .iter()
                                .map(|bank| bank.march.mismatches)
                                .sum();
                            let planted_count = planted.len() as u64;
                            let detection_rate = detected as f64 / planted_count as f64;
                            let ops_per_cell = algorithm.program().ops_per_cell() as u64;
                            assert_eq!(
                                march_ops,
                                ops_per_cell * cells * config.banks as u64,
                                "{} must cost exactly {}n",
                                algorithm.name(),
                                ops_per_cell
                            );
                            assert!(test_time_ns > 0.0, "test time must be charged");
                            check_coverage(
                                class,
                                scheme,
                                protection,
                                algorithm,
                                raw,
                                detected,
                                planted_count,
                            );
                            rows.push(EscapeRow {
                                class,
                                scheme,
                                protection,
                                algorithm,
                                raw,
                                background,
                                planted: planted_count,
                                detected,
                                detection_rate,
                                escape_rate: 1.0 - detection_rate,
                                mismatches,
                                march_ops,
                                ops_per_bit: march_ops as f64
                                    / (cells * config.banks as u64) as f64,
                                test_time_ns,
                            });
                        }
                    }
                }
            }
        }
    }
    rows
}

/// The asserted slice of the coverage matrix: variation-clean schemes at
/// unprotected banks — or at **any** protection level when the March reads
/// raw, since bypassing the codec denies ECC the chance to absorb the
/// defect. The conventional scheme's bad-cell floor makes healthy-cell
/// verdicts noisy (reported, not asserted), and decoded reads at ECC
/// levels legitimately mask single-cell defects from the tester.
fn check_coverage(
    class: FaultClass,
    scheme: SchemeKind,
    protection: Protection,
    algorithm: MarchAlgorithm,
    raw: bool,
    detected: u64,
    planted: u64,
) {
    let clean_scheme = matches!(scheme, SchemeKind::Nondestructive | SchemeKind::Destructive);
    if !clean_scheme || (protection != Protection::None && !raw) {
        return;
    }
    match (class, algorithm) {
        (FaultClass::CouplingDisturb, MarchAlgorithm::CMinus) => assert_eq!(
            detected, 0,
            "March C- cannot sensitise CFds: it performs no non-transition w1"
        ),
        (FaultClass::CouplingDisturb, MarchAlgorithm::Ss) => assert_eq!(
            detected, planted,
            "March SS's non-transition writes must catch every CFds"
        ),
        (FaultClass::Backhop, _) => {} // probabilistic: reported only
        _ => assert_eq!(
            detected,
            planted,
            "{} must detect every {} defect on {scheme:?} without protection",
            algorithm.name(),
            class.name()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planting_is_deterministic_and_distinct() {
        let config = MarchCampaignConfig::date2010();
        for class in FaultClass::ALL {
            let (plan_a, planted_a) = config.plant(class);
            let (plan_b, planted_b) = config.plant(class);
            assert_eq!(plan_a, plan_b, "{}", class.name());
            assert_eq!(planted_a, planted_b);
            assert_eq!(
                planted_a.len(),
                config.banks * config.defects_per_class,
                "{}",
                class.name()
            );
            for bank in 0..config.banks {
                let mut victims: Vec<u32> = planted_a
                    .iter()
                    .filter(|defect| defect.bank == bank)
                    .map(|defect| defect.victim_cell)
                    .collect();
                victims.sort_unstable();
                victims.dedup();
                assert_eq!(
                    victims.len(),
                    config.defects_per_class,
                    "{} victims must be distinct",
                    class.name()
                );
            }
        }
    }

    #[test]
    fn class_names_and_probabilistic_flags() {
        assert_eq!(FaultClass::ALL.len(), 7);
        assert!(FaultClass::Backhop.is_probabilistic());
        assert!(!FaultClass::StuckAt.is_probabilistic());
        assert_eq!(FaultClass::CouplingDisturb.name(), "cfds");
    }

    #[test]
    fn a_single_campaign_cell_detects_stuck_cells() {
        // The full sweep runs in the integration suite and the trafficsim
        // binary; here one rung end to end, through the frontend.
        let config = MarchCampaignConfig::date2010()
            .with_schemes(vec![SchemeKind::Nondestructive])
            .with_classes(vec![FaultClass::StuckAt]);
        let rows = run_escape_campaign(&config);
        // 1 class × 1 scheme × 3 protections × 2 algorithms.
        assert_eq!(rows.len(), 6);
        for row in &rows {
            if row.protection == Protection::None {
                assert_eq!(row.detection_rate, 1.0, "{:?}", row);
                assert_eq!(row.escape_rate, 0.0);
            }
            assert!(row.test_time_ns > 0.0);
        }
        let c_minus = rows
            .iter()
            .find(|row| row.algorithm == MarchAlgorithm::CMinus)
            .unwrap();
        let ss = rows
            .iter()
            .find(|row| row.algorithm == MarchAlgorithm::Ss)
            .unwrap();
        assert!((c_minus.ops_per_bit - 10.0).abs() < 1e-12);
        assert!((ss.ops_per_bit - 22.0).abs() < 1e-12);
    }

    #[test]
    fn raw_mode_recovers_coverage_ecc_masks_from_the_tester() {
        let config = MarchCampaignConfig::date2010()
            .with_schemes(vec![SchemeKind::Nondestructive])
            .with_algorithms(vec![MarchAlgorithm::CMinus])
            .with_classes(vec![FaultClass::StuckAt, FaultClass::Pinhole])
            .with_raw_modes(vec![false, true]);
        let rows = run_escape_campaign(&config);
        // 2 classes × 1 scheme × 3 protections × 1 algorithm × 2 read modes.
        assert_eq!(rows.len(), 12);
        for row in &rows {
            if row.raw {
                // Bypassing the codec denies ECC the chance to absorb the
                // defect: full single-cell coverage at every protection
                // level (asserted inside the sweep too).
                assert_eq!(row.detection_rate, 1.0, "{row:?}");
            } else if row.protection != Protection::None {
                // The decoded word hides what the codec corrects.
                assert!(
                    row.detection_rate < 1.0,
                    "SECDED must mask single-cell defects from decoded reads: {row:?}"
                );
            }
        }
    }

    #[test]
    fn every_background_holds_coverage_at_unprotected_banks() {
        let config = MarchCampaignConfig::date2010()
            .with_schemes(vec![SchemeKind::Nondestructive])
            .with_algorithms(vec![MarchAlgorithm::Ss])
            .with_classes(vec![FaultClass::StuckAt])
            .with_backgrounds(DataBackground::ALL.to_vec());
        let rows = run_escape_campaign(&config);
        // 1 class × 1 scheme × 3 protections × 1 algorithm × 3 backgrounds.
        assert_eq!(rows.len(), 9);
        for background in DataBackground::ALL {
            let row = rows
                .iter()
                .find(|row| row.background == background && row.protection == Protection::None)
                .unwrap();
            assert_eq!(
                row.detection_rate,
                1.0,
                "{} background must not cost stuck-at coverage",
                background.name()
            );
        }
    }
}
