//! Drives a lowered March program through every bank of a controller.

use crate::engine::{Controller, Dispatch};
use crate::march::program::{DataBackground, MarchAlgorithm};
use crate::telemetry::Telemetry;

/// Runs `algorithm` over every bank of `controller` and returns the
/// post-test telemetry (March verdicts live in each bank's
/// [`MarchTelemetry`](crate::telemetry::MarchTelemetry)).
///
/// Every bank executes the same lowered schedule on its own March RNG
/// stream, so [`Dispatch::Serial`] and [`Dispatch::Parallel`] are
/// bit-identical — the same invariant demand traffic holds.
///
/// Reads go through the bank's host-visible read path (decoded under ECC);
/// see [`run_march_with`] for the raw-array mode and data-background
/// sweeps.
///
/// # Panics
///
/// Panics if the per-bank capacity exceeds `u32::MAX` cells.
pub fn run_march(
    controller: &mut Controller,
    algorithm: MarchAlgorithm,
    dispatch: Dispatch,
) -> Telemetry {
    run_march_with(
        controller,
        algorithm,
        DataBackground::Solid,
        false,
        dispatch,
    )
}

/// [`run_march`] with the tester's knobs exposed: a
/// [`DataBackground`] the notation's `0`/`1` is lowered against, and a
/// `raw` mode that bypasses the SECDED codec on reads so single-cell
/// defects the codec would absorb are observed directly (no effect on
/// unprotected parts).
///
/// # Panics
///
/// Panics if the per-bank capacity exceeds `u32::MAX` cells.
pub fn run_march_with(
    controller: &mut Controller,
    algorithm: MarchAlgorithm,
    background: DataBackground,
    raw: bool,
    dispatch: Dispatch,
) -> Telemetry {
    let faults = controller.config().faults.clone();
    let cells = u32::try_from(controller.config().spec.capacity_bits())
        .expect("bank capacity must fit march cell indices");
    let cols = u32::try_from(controller.config().spec.cols)
        .expect("bank width must fit march cell indices");
    let steps = algorithm
        .program()
        .lower_with_background(cells, cols, background);
    match dispatch {
        Dispatch::Serial => {
            for bank in controller.banks_mut() {
                for step in &steps {
                    bank.execute_march_op(step.cell, step.op, step.element, raw, &faults);
                }
            }
        }
        Dispatch::Parallel => {
            let banks = controller.banks_mut();
            let faults = &faults;
            let steps = &steps;
            crossbeam::scope(|scope| {
                for bank in banks.iter_mut() {
                    scope.spawn(move |_| {
                        for step in steps {
                            bank.execute_march_op(step.cell, step.op, step.element, raw, faults);
                        }
                    });
                }
            })
            .expect("a March worker panicked");
        }
    }
    controller.telemetry()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ControllerConfig;
    use stt_sense::SchemeKind;

    #[test]
    fn march_runs_are_bit_identical_across_dispatch() {
        for algorithm in MarchAlgorithm::ALL {
            let config = ControllerConfig::small(SchemeKind::Nondestructive, 3).with_seed(11);
            let mut serial = Controller::new(config.clone());
            let mut parallel = Controller::new(config);
            let a = run_march(&mut serial, algorithm, Dispatch::Serial);
            let b = run_march(&mut parallel, algorithm, Dispatch::Parallel);
            assert_eq!(a, b, "{}", algorithm.name());
            assert_eq!(serial.stored_state(), parallel.stored_state());
        }
    }

    #[test]
    fn a_healthy_bank_passes_march_at_textbook_cost() {
        let config = ControllerConfig::small(SchemeKind::Nondestructive, 1).with_seed(3);
        let cells = config.spec.capacity_bits() as u64;
        let mut controller = Controller::new(config);
        let telemetry = run_march(&mut controller, MarchAlgorithm::CMinus, Dispatch::Serial);
        let march = &telemetry.banks[0].march;
        assert_eq!(march.ops, 10 * cells, "March C- is a 10n test");
        assert_eq!(march.mismatches, 0, "healthy cells must pass");
        assert!(march.failing_cells.is_empty());
        assert!(march.busy_time.get() > 0.0);
    }
}
