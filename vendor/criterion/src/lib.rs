//! Offline stand-in for `criterion`.
//!
//! The build environment has no registry access, so this crate implements
//! the narrow criterion 0.5 surface the workspace's benches use:
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `sample_size`/`sampling_mode`/`throughput`,
//! `Bencher::iter`/`iter_batched`, and [`black_box`].
//!
//! Methodology is intentionally simple — each benchmark is timed over a
//! small fixed number of iterations and the median per-iteration time is
//! printed. There is no statistical analysis, warm-up tuning, or HTML
//! report; the point is that `cargo bench` (and `cargo test`, which builds
//! and runs `harness = false` bench targets) works offline and still gives
//! a usable order-of-magnitude number.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How [`Bencher::iter_batched`] sizes its batches (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// A fresh input per iteration.
    PerIteration,
}

/// Sampling strategy of a group (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum SamplingMode {
    /// Criterion picks.
    Auto,
    /// Linearly growing iteration counts.
    Linear,
    /// Constant iteration counts.
    Flat,
}

/// Throughput annotation of a group (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Times one benchmark's routine.
#[derive(Debug)]
pub struct Bencher {
    iterations: u32,
    samples: Vec<f64>,
}

impl Bencher {
    fn new(iterations: u32) -> Self {
        Self {
            iterations,
            samples: Vec::new(),
        }
    }

    /// Runs `routine` repeatedly, recording per-iteration wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.iterations {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed().as_secs_f64());
        }
    }

    /// Runs `routine` on fresh inputs from `setup`, timing only the routine.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed().as_secs_f64());
        }
    }

    fn median(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        Some(sorted[sorted.len() / 2])
    }
}

fn humanise(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

fn run_one(id: &str, iterations: u32, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher::new(iterations);
    f(&mut bencher);
    match bencher.median() {
        Some(median) => println!(
            "bench {id:<40} median {:>12} ({} iterations)",
            humanise(median),
            bencher.samples.len()
        ),
        None => println!("bench {id:<40} (no samples)"),
    }
}

/// Entry point handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Number of timed iterations per bench. Kept tiny so `cargo test`
    /// (which executes `harness = false` bench binaries) stays fast.
    const ITERATIONS: u32 = 3;

    /// Benchmarks a single function.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id.as_ref(), Self::ITERATIONS, &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.as_ref().to_string(),
        }
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted and ignored (the stand-in's iteration count is fixed).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted and ignored.
    pub fn sampling_mode(&mut self, _mode: SamplingMode) -> &mut Self {
        self
    }

    /// Accepted and ignored.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks a function within the group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.as_ref());
        run_one(&id, Criterion::ITERATIONS, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles bench functions into a single runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` for one or more `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` invokes harness=false bench binaries with
            // libtest-style flags; accept and ignore them.
            let _args: Vec<String> = std::env::args().collect();
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut count = 0u32;
        Criterion::default().bench_function("counter", |b| b.iter(|| count += 1));
        assert_eq!(count, Criterion::ITERATIONS);
    }

    #[test]
    fn groups_run_and_finish() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("group");
        group.sample_size(10).sampling_mode(SamplingMode::Flat);
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter_batched(|| 41u64, |x| x + 1, BatchSize::SmallInput);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn humanise_picks_sane_units() {
        assert!(humanise(2.0).ends_with(" s"));
        assert!(humanise(2e-3).ends_with(" ms"));
        assert!(humanise(2e-6).ends_with(" µs"));
        assert!(humanise(2e-9).ends_with(" ns"));
    }
}
