//! Offline stand-in for `criterion`.
//!
//! The build environment has no registry access, so this crate implements
//! the narrow criterion 0.5 surface the workspace's benches use:
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `sample_size`/`sampling_mode`/`throughput`,
//! `Bencher::iter`/`iter_batched`, and [`black_box`].
//!
//! Methodology is intentionally simple — each benchmark is timed over a
//! small fixed number of iterations and the median per-iteration time is
//! printed. There is no statistical analysis, warm-up tuning, or HTML
//! report; the point is that `cargo bench` (and `cargo test`, which builds
//! and runs `harness = false` bench targets) works offline and still gives
//! a usable order-of-magnitude number.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How [`Bencher::iter_batched`] sizes its batches (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// A fresh input per iteration.
    PerIteration,
}

/// Sampling strategy of a group (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum SamplingMode {
    /// Criterion picks.
    Auto,
    /// Linearly growing iteration counts.
    Linear,
    /// Constant iteration counts.
    Flat,
}

/// Throughput annotation of a group.
///
/// [`Throughput::Elements`] is recorded and emitted as an `"elements"`
/// field on every JSON record of the group (see `CRITERION_JSON`), which is
/// how `scripts/bench.sh` converts medians into Mtxn/s.
/// [`Throughput::Bytes`] is accepted and ignored.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Times one benchmark's routine.
#[derive(Debug)]
pub struct Bencher {
    iterations: u32,
    samples: Vec<f64>,
}

impl Bencher {
    fn new(iterations: u32) -> Self {
        Self {
            iterations,
            samples: Vec::new(),
        }
    }

    /// Runs `routine` repeatedly, recording per-iteration wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.iterations {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed().as_secs_f64());
        }
    }

    /// Runs `routine` on fresh inputs from `setup`, timing only the routine.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed().as_secs_f64());
        }
    }

    fn median(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        Some(sorted[sorted.len() / 2])
    }
}

fn humanise(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

fn run_one(id: &str, iterations: u32, elements: Option<u64>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher::new(iterations);
    f(&mut bencher);
    match bencher.median() {
        Some(median) => {
            println!(
                "bench {id:<40} median {:>12} ({} iterations)",
                humanise(median),
                bencher.samples.len()
            );
            append_json_record(id, median, bencher.samples.len(), elements);
        }
        None => println!("bench {id:<40} (no samples)"),
    }
}

/// When `CRITERION_JSON` names a file, appends one JSON line per finished
/// benchmark: `{"id": ..., "median_s": ..., "iterations": ...}`, plus
/// `"elements"` when the group declared [`Throughput::Elements`]. This is
/// the machine-readable channel `scripts/bench.sh` assembles
/// `BENCH_MNA.json` from; write failures are ignored (benches must never
/// die on a read-only checkout).
fn append_json_record(id: &str, median: f64, iterations: usize, elements: Option<u64>) {
    use std::io::Write;
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let escaped: String = id
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            _ => vec![c],
        })
        .collect();
    let elements_field = match elements {
        Some(n) => format!(", \"elements\": {n}"),
        None => String::new(),
    };
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = writeln!(
            file,
            "{{\"id\": \"{escaped}\", \"median_s\": {median:e}, \"iterations\": {iterations}{elements_field}}}"
        );
    }
}

/// Entry point handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Default number of timed iterations per bench. Kept tiny so
    /// `cargo test` (which executes `harness = false` bench targets)
    /// stays fast.
    const ITERATIONS: u32 = 3;

    /// Iterations per bench: [`Criterion::ITERATIONS`] unless the
    /// `CRITERION_ITERATIONS` environment variable overrides it (used by
    /// `scripts/bench.sh` to take more samples than the `cargo test`
    /// smoke run does).
    fn iterations() -> u32 {
        std::env::var("CRITERION_ITERATIONS")
            .ok()
            .and_then(|raw| raw.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(Self::ITERATIONS)
    }

    /// Benchmarks a single function.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id.as_ref(), Self::iterations(), None, &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.as_ref().to_string(),
            elements: None,
        }
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    /// Per-iteration element count from [`Throughput::Elements`], stamped
    /// onto every JSON record the group emits.
    elements: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Accepted and ignored (the stand-in's iteration count is fixed).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted and ignored.
    pub fn sampling_mode(&mut self, _mode: SamplingMode) -> &mut Self {
        self
    }

    /// Records the group's throughput: [`Throughput::Elements`] flows into
    /// the JSON records as an `"elements"` field, [`Throughput::Bytes`] is
    /// ignored.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.elements = match throughput {
            Throughput::Elements(n) => Some(n),
            Throughput::Bytes(_) => None,
        };
        self
    }

    /// Benchmarks a function within the group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.as_ref());
        run_one(&id, Criterion::iterations(), self.elements, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles bench functions into a single runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` for one or more `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` invokes harness=false bench binaries with
            // libtest-style flags; accept and ignore them.
            let _args: Vec<String> = std::env::args().collect();
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises tests that read or write the `CRITERION_*` environment
    /// variables (libtest runs tests on parallel threads).
    fn env_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn bench_function_runs_the_closure() {
        let _guard = env_lock();
        let mut count = 0u32;
        Criterion::default().bench_function("counter", |b| b.iter(|| count += 1));
        assert_eq!(count, Criterion::ITERATIONS);
    }

    #[test]
    fn groups_run_and_finish() {
        let _guard = env_lock();
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("group");
        group.sample_size(10).sampling_mode(SamplingMode::Flat);
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter_batched(|| 41u64, |x| x + 1, BatchSize::SmallInput);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn json_records_are_valid_json_lines() {
        let _guard = env_lock();
        let path = std::env::temp_dir().join(format!("criterion-json-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("CRITERION_JSON", &path);
        append_json_record("group/with \"quote\"", 1.25e-6, 5, Some(2_000));
        append_json_record("plain", 2.0e-3, 3, None);
        std::env::remove_var("CRITERION_JSON");
        let contents = std::fs::read_to_string(&path).expect("records written");
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = contents.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\\\"quote\\\""), "line: {}", lines[0]);
        assert!(
            lines[0].contains("\"elements\": 2000"),
            "line: {}",
            lines[0]
        );
        assert!(
            lines[1].contains("\"median_s\": 2e-3"),
            "line: {}",
            lines[1]
        );
        assert!(!lines[1].contains("elements"), "line: {}", lines[1]);
    }

    #[test]
    fn group_throughput_elements_reach_the_json_records() {
        let _guard = env_lock();
        let path = std::env::temp_dir().join(format!("criterion-elems-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("CRITERION_JSON", &path);
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("tp");
        group.throughput(Throughput::Elements(1_500));
        group.bench_function("noop", |b| b.iter(|| 1u64 + 1));
        group.finish();
        std::env::remove_var("CRITERION_JSON");
        let contents = std::fs::read_to_string(&path).expect("records written");
        let _ = std::fs::remove_file(&path);
        assert!(
            contents.contains("\"elements\": 1500"),
            "records: {contents}"
        );
    }

    #[test]
    fn iteration_override_parses_and_defaults() {
        let _guard = env_lock();
        // No env (or garbage) → compiled-in default.
        std::env::remove_var("CRITERION_ITERATIONS");
        assert_eq!(Criterion::iterations(), Criterion::ITERATIONS);
        std::env::set_var("CRITERION_ITERATIONS", "not a number");
        assert_eq!(Criterion::iterations(), Criterion::ITERATIONS);
        std::env::set_var("CRITERION_ITERATIONS", "0");
        assert_eq!(Criterion::iterations(), Criterion::ITERATIONS);
        std::env::set_var("CRITERION_ITERATIONS", "17");
        assert_eq!(Criterion::iterations(), 17);
        std::env::remove_var("CRITERION_ITERATIONS");
    }

    #[test]
    fn humanise_picks_sane_units() {
        assert!(humanise(2.0).ends_with(" s"));
        assert!(humanise(2e-3).ends_with(" ms"));
        assert!(humanise(2e-6).ends_with(" µs"));
        assert!(humanise(2e-9).ends_with(" ns"));
    }
}
