//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses — the
//! [`proptest!`] macro with `arg in strategy` bindings, numeric range and
//! [`collection::vec`] strategies, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`, and `ProptestConfig::with_cases` — because the build
//! environment has no registry access.
//!
//! Differences from the real crate: no shrinking (a failing case reports
//! the values via the assertion message instead of a minimised input), and
//! case generation is seeded from the test's module path + name, so every
//! run of a given test explores the same deterministic sequence of cases.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Config and error types used by the [`proptest!`] expansion.
pub mod test_runner {
    /// How many cases a property test runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to execute.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real proptest default is 256; 64 keeps the heavier
            // numeric properties in this workspace fast while still
            // exploring a meaningful slice of the input space.
            Self { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assert!`-style failure: the property is false.
        Fail(String),
        /// `prop_assume!`-style rejection: the input is out of scope.
        Reject(String),
    }

    /// SplitMix64 case generator (deterministic per test).
    #[derive(Debug, Clone)]
    pub struct PtRng {
        state: u64,
    }

    impl PtRng {
        /// A generator seeded with `seed`.
        #[must_use]
        pub fn new(seed: u64) -> Self {
            Self { state: seed }
        }

        /// The next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// FNV-1a hash of a test name, used as its deterministic seed.
    #[must_use]
    pub fn fnv1a(name: &str) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::PtRng;

    /// A source of random values for one [`crate::proptest!`] argument.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn sample_value(&self, rng: &mut PtRng) -> Self::Value;
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                fn sample_value(&self, rng: &mut PtRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                    (self.start as i128 + offset) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                #[allow(clippy::cast_possible_truncation)]
                fn sample_value(&self, rng: &mut PtRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let unit = rng.unit_f64() as $t;
                    let value = self.start + (self.end - self.start) * unit;
                    if value >= self.end { self.start } else { value }
                }
            }
        )*};
    }
    impl_float_range_strategy!(f32, f64);
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::PtRng;

    /// Strategy drawing uniform booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform `true` / `false`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = ::std::primitive::bool;
        fn sample_value(&self, rng: &mut PtRng) -> Self::Value {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::PtRng;

    /// Length bounds for [`vec`]: an exact `usize` or a `Range<usize>`.
    pub trait IntoSizeRange {
        /// `(min, max)` inclusive length bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "cannot sample empty size range");
            (self.start, self.end - 1)
        }
    }

    /// Strategy producing `Vec`s of an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Generates vectors whose length lies in `size` with elements drawn
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample_value(&self, rng: &mut PtRng) -> Self::Value {
            let span = (self.max - self.min) as u128 + 1;
            let len = self.min + (((u128::from(rng.next_u64()) * span) >> 64) as usize);
            (0..len).map(|_| self.element.sample_value(rng)).collect()
        }
    }
}

/// The subset of the proptest prelude the workspace imports.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests: `proptest! { #[test] fn name(x in strat) {..} }`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            $vis:vis fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            #[test]
            $vis fn $name() {
                let __pt_config: $crate::test_runner::ProptestConfig = $config;
                let __pt_seed = $crate::test_runner::fnv1a(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut __pt_rng = $crate::test_runner::PtRng::new(__pt_seed);
                let mut __pt_accepted: u32 = 0;
                let mut __pt_attempted: u32 = 0;
                let __pt_max_attempts = __pt_config.cases.saturating_mul(16).max(16);
                while __pt_accepted < __pt_config.cases {
                    assert!(
                        __pt_attempted < __pt_max_attempts,
                        "too many prop_assume! rejections ({} attempts for {} cases)",
                        __pt_attempted,
                        __pt_config.cases,
                    );
                    __pt_attempted += 1;
                    $(
                        let $arg = $crate::strategy::Strategy::sample_value(
                            &($strat),
                            &mut __pt_rng,
                        );
                    )+
                    let __pt_result: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                    match __pt_result {
                        ::std::result::Result::Ok(()) => __pt_accepted += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(message),
                        ) => {
                            panic!(
                                "property '{}' failed at case {}: {}",
                                stringify!($name),
                                __pt_accepted,
                                message,
                            );
                        }
                    }
                }
            }
        )+
    };
}

/// `assert!` for property bodies: fails the case instead of panicking
/// directly, so the harness can report which case died.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        // Bound to a name first so negating it stays lint-clean for
        // partially ordered operands like `x > 2.0`.
        let condition: ::std::primitive::bool = $cond;
        if !condition {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            left,
            right,
        );
    }};
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            left,
        );
    }};
}

/// Rejects the current case when its precondition does not hold; the case
/// does not count against the configured case budget.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        let condition: ::std::primitive::bool = $cond;
        if !condition {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_are_respected(x in 10.0f64..20.0, k in 3usize..7) {
            prop_assert!((10.0..20.0).contains(&x));
            prop_assert!((3..7).contains(&k));
        }

        #[test]
        fn vec_lengths_obey_bounds(
            data in crate::collection::vec(-1.0f64..1.0, 2..10),
            exact in crate::collection::vec(0u64..5, 4),
        ) {
            prop_assert!(data.len() >= 2 && data.len() < 10, "len {}", data.len());
            prop_assert_eq!(exact.len(), 4);
            prop_assert!(data.iter().all(|v| (-1.0..1.0).contains(v)));
        }

        #[test]
        fn assume_rejects_without_failing(k in 0u64..100) {
            prop_assume!(k % 2 == 0);
            prop_assert!(k % 2 == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_form_parses(x in 0.0f64..1.0) {
            prop_assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics_with_context() {
        mod inner {
            proptest! {
                #[test]
                pub fn always_fails(x in 0.0f64..1.0) {
                    prop_assert!(x > 2.0, "x was {x}");
                }
            }
        }
        inner::always_fails();
    }
}
