//! Offline no-op stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its model types for
//! forward compatibility, but nothing in the build actually serialises
//! through serde (the one JSON check in `stt-units` hand-rolls its output).
//! With no registry access, the real derive cannot be built, so these
//! derives expand to nothing; the `serde` stand-in crate provides blanket
//! trait impls so any future `T: Serialize` bound still holds.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`; accepts (and ignores) `#[serde(...)]`
/// helper attributes such as `#[serde(transparent)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`; accepts (and ignores) `#[serde(...)]`
/// helper attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
