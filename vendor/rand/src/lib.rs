//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no registry access, so the
//! workspace vendors the small slice of the `rand` 0.8 API it actually uses:
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`]
//! and [`rngs::StdRng`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — deterministic, fast, and statistically solid for the
//! Monte-Carlo workloads here. It is **not** the ChaCha12 generator of the
//! real `rand` crate, so absolute random streams differ from upstream;
//! everything in this workspace treats seeds as opaque reproducibility
//! handles, which this preserves exactly (same seed ⇒ same stream, forever).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniform random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types a [`Rng::gen`] call can produce.
pub trait SampleStandard: Sized {
    /// Draws one value from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (the `rand` convention).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

/// Types [`Rng::gen_range`] can sample over a half-open range.
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[low, high)`.
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u128;
                // Widening multiply maps 64 uniform bits onto the span with
                // negligible bias for the span sizes used here.
                let offset = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (low as i128 + offset) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let unit = <$t as SampleStandard>::sample_standard(rng);
                let value = low + (high - low) * unit;
                // Rounding can land exactly on `high`; fold back inside.
                if value >= high { low } else { value }
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the type's standard distribution (`[0, 1)` for
    /// floats, full width for integers).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_uniform(self, range.start, range.end)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator deterministically from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64. (Stand-in for `rand::rngs::StdRng`; see the
    /// crate docs for the stream-compatibility caveat.)
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, 2019).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_stay_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let k = rng.gen_range(3..17usize);
            assert!((3..17).contains(&k));
            let x = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&x));
            let neg = rng.gen_range(-10i64..-2);
            assert!((-10..-2).contains(&neg));
        }
    }

    #[test]
    fn gen_range_covers_the_span() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&hit| hit));
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn mean_of_unit_draws_is_half() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }
}
