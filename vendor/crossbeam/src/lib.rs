//! Offline stand-in for `crossbeam` scoped threads.
//!
//! The workspace only uses `crossbeam::scope` + `Scope::spawn`; since Rust
//! 1.63 the standard library's [`std::thread::scope`] provides the same
//! borrow-friendly scoped spawning, so this crate is a thin adapter kept
//! because the build environment has no registry access.
//!
//! One deliberate difference: crossbeam passes a `&Scope` argument to every
//! spawned closure (for nested spawns); the call sites in this workspace
//! all ignore that argument (`|_| …`), so the adapter passes `()` instead.
//! Nested spawning is therefore unsupported.

#![warn(missing_docs)]

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The error payload of a panicked scoped thread.
pub type PanicPayload = Box<dyn Any + Send + 'static>;

/// A scope handle: spawn borrowing threads that must finish before
/// [`scope`] returns.
#[derive(Debug)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives `()` where crossbeam
    /// would pass `&Scope` (see the crate docs).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(()) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(())),
        }
    }
}

/// Handle to one scoped thread.
#[derive(Debug)]
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread and returns its result (`Err` on panic).
    ///
    /// # Errors
    ///
    /// Returns the panic payload if the thread panicked.
    pub fn join(self) -> Result<T, PanicPayload> {
        self.inner.join()
    }
}

/// Runs `f` with a scope in which borrowing threads can be spawned; all
/// spawned threads are joined before this returns. Returns `Err` with the
/// panic payload if any unjoined spawned thread panicked.
///
/// # Errors
///
/// Returns the panic payload of the first detected panicking thread.
pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
where
    F: FnOnce(&Scope<'_, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(move || {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_borrow_and_fill_slices() {
        let mut data = vec![0u64; 64];
        let result = scope(|scope| {
            for (worker, chunk) in data.chunks_mut(16).enumerate() {
                scope.spawn(move |_| {
                    for (offset, slot) in chunk.iter_mut().enumerate() {
                        *slot = (worker * 16 + offset) as u64;
                    }
                });
            }
        });
        assert!(result.is_ok());
        assert_eq!(data, (0..64).collect::<Vec<u64>>());
    }

    #[test]
    fn panicking_worker_surfaces_as_err() {
        let result = scope(|scope| {
            scope.spawn(|_| panic!("worker died"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn join_returns_thread_result() {
        let value = scope(|scope| {
            let handle = scope.spawn(|_| 41 + 1);
            handle.join().expect("worker ok")
        })
        .expect("scope ok");
        assert_eq!(value, 42);
    }
}
