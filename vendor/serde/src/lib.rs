//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op derives from the vendored `serde_derive` and
//! provides blanket-implemented marker traits, so `#[derive(Serialize,
//! Deserialize)]` and `T: Serialize` bounds compile without the real serde
//! (unavailable: the build environment has no registry access). No actual
//! serialisation happens anywhere in this workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (blanket-implemented).
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize` (blanket-implemented).
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
