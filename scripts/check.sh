#!/usr/bin/env bash
# Repository health gate: formatting, lints, and the full test suite.
#
# Run from anywhere inside the repo:
#
#     scripts/check.sh
#
# Exits non-zero on the first failing step, so it is safe to use as a
# pre-push hook or CI entry point.

set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> cargo bench --no-run"
cargo bench --no-run

echo "all checks passed"
