#!/usr/bin/env bash
# Repository health gate: formatting, lints, and the full test suite.
#
# Run from anywhere inside the repo:
#
#     scripts/check.sh
#
# Exits non-zero on the first failing step, so it is safe to use as a
# pre-push hook or CI entry point.

set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# The reliability acceptance gate first, under its own banner: SECDED
# codec properties, the graceful-degradation campaign and scrub's
# repair/bit-identity guarantees (also part of the full suite below).
echo "==> cargo test -q -p stt-ctrl --test integration_reliability"
cargo test -q -p stt-ctrl --test integration_reliability

echo "==> cargo test -q"
cargo test -q

# Documentation gate over the repo's own crates (vendored stand-ins are
# exempt — they mirror upstream APIs we don't own).
echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet \
    -p stt-units -p stt-mtj -p stt-mna -p stt-stats \
    -p stt-array -p stt-sense -p stt-ctrl -p stt-bench

echo "==> cargo bench --no-run"
cargo bench --no-run

echo "all checks passed"
