#!/usr/bin/env bash
# Repository health gate: formatting, lints, and the full test suite.
#
# Run from anywhere inside the repo:
#
#     scripts/check.sh
#
# Exits non-zero on the first failing step, so it is safe to use as a
# pre-push hook or CI entry point.

set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# The reliability acceptance gate first, under its own banner: SECDED
# codec properties, the graceful-degradation campaign and scrub's
# repair/bit-identity guarantees (also part of the full suite below).
echo "==> cargo test -q -p stt-ctrl --test integration_reliability"
cargo test -q -p stt-ctrl --test integration_reliability

echo "==> cargo test -q"
cargo test -q

# Documentation gate over the repo's own crates (vendored stand-ins are
# exempt — they mirror upstream APIs we don't own).
echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet \
    -p stt-units -p stt-mtj -p stt-mna -p stt-stats \
    -p stt-array -p stt-sense -p stt-ctrl -p stt-bench

echo "==> cargo bench --no-run"
cargo bench --no-run

# Throughput smoke gate: the FCFS event loop must not fall off a cliff
# versus the committed baseline (BENCH_MNA.json, written by
# scripts/bench.sh). Shared boxes swing medians by tens of percent
# between windows, so only a halving of throughput — the size of losing
# the FCFS fast path outright — fails; smaller dips just warn.
echo "==> sched_frontend Mtxn/s smoke gate"
baseline="$(grep -o '"sched_fcfs_mtxn_per_s": [0-9.]*' BENCH_MNA.json | awk '{print $2}' || true)"
if [ -z "$baseline" ]; then
    echo "    no sched_fcfs_mtxn_per_s in BENCH_MNA.json; skipping (run scripts/bench.sh)"
else
    gate_records="$(mktemp)"
    CRITERION_JSON="$gate_records" CRITERION_ITERATIONS=5 \
        cargo bench -p stt-bench --bench sched_frontend > /dev/null
    awk -v baseline="$baseline" '
        /"id": "sched_frontend\/policy\/fcfs"/ {
            median = $0; sub(/.*"median_s": /, "", median); sub(/[,}].*/, "", median)
            elements = $0; sub(/.*"elements": /, "", elements); sub(/[,}].*/, "", elements)
            now = (elements + 0) / (median + 0) / 1e6
            printf "    fcfs: %.3f Mtxn/s (baseline %.3f)\n", now, baseline
            if (now < 0.5 * baseline) {
                print "    FAIL: fcfs throughput halved versus the committed baseline"
                exit 1
            }
            if (now < 0.7 * baseline) {
                print "    warning: fcfs >30% below baseline (noisy box? rerun scripts/bench.sh)"
            }
        }
    ' "$gate_records"
    rm -f "$gate_records"
fi

# Batched Monte-Carlo smoke: the fig5mc campaign must run, spot-check its
# batched waveforms against sequential references (asserted inside the
# experiment), and amortize at least FIG5_AMORTIZATION_FLOOR times fewer
# LU factorizations than a sequential campaign.
echo "==> batched Monte-Carlo smoke (repro fig5mc)"
amortization="$(cargo run --release -q -p stt-bench --bin repro -- fig5mc \
    | grep -o 'factorization_amortization=[0-9.]*' | cut -d= -f2)"
awk -v value="$amortization" -v floor="${FIG5_AMORTIZATION_FLOOR:-5.0}" 'BEGIN {
    if (value + 0 < floor + 0) {
        printf "    FAIL: batch amortization %.1f below floor %.1f\n", value, floor
        exit 1
    }
    printf "    factorization amortization %.1fx (floor %.1f) ok\n", value, floor
}'

# Fast end-to-end smoke of the full-chip hierarchy: a small topology sweep
# that asserts sharded == serial at every point and exercises the lazy
# sparse-chip path (200 ops keeps it to a few seconds; the knee assertion
# only arms at >= 1000 ops).
echo "==> trafficsim --topology-sweep smoke"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
cargo run --release -q -p stt-bench --bin trafficsim -- \
    --topology-sweep --ops 200 --geometry 2x1x2x2 --csv "$smoke_dir" > /dev/null
test -s "$smoke_dir/topology_sweep.csv"

# Manufacturing-test smoke: the March escape campaign on the trimmed
# (smoke-sized) matrix. Every textbook coverage guarantee is asserted
# inside run_escape_campaign, so a non-empty CSV means they all held.
echo "==> trafficsim --march-sweep smoke (decoded + raw read modes)"
cargo run --release -q -p stt-bench --bin trafficsim -- \
    --march-sweep --ops 200 --csv "$smoke_dir" > /dev/null
test -s "$smoke_dir/march_sweep.csv"
# The sweep marches every cell in both read modes; raw rows must be there.
grep -q ",true," "$smoke_dir/march_sweep.csv"

# Thermal-drift smoke: three arms (baseline / hot-static / hot-calibrated)
# with serial == parallel asserted per arm. The >=10x degradation and <=2x
# recovery gates only arm at the full --ops 4000; the smoke proves the
# drift + daemon path end to end.
echo "==> trafficsim --thermal-sweep smoke"
cargo run --release -q -p stt-bench --bin trafficsim -- \
    --thermal-sweep --ops 300 --csv "$smoke_dir" > /dev/null
test -s "$smoke_dir/thermal_sweep.csv"

echo "all checks passed"
