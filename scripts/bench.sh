#!/usr/bin/env bash
# Performance baseline: runs the MNA-solver and trace-engine criterion
# benches and writes the median timings to BENCH_MNA.json at the repo
# root (committed, so future PRs can diff against this PR's numbers).
#
#     scripts/bench.sh               # 15 iterations per bench (default)
#     BENCH_ITERATIONS=50 scripts/bench.sh
#
# The vendored criterion stand-in emits one JSON line per benchmark to
# the file named by CRITERION_JSON; this script assembles those lines
# into a single JSON document and computes the headline scalars:
#
#   fig5_linear_cached_lu_speedup   restamp / cached-LU medians (32-seg)
#   fig5_banded_speedup             dense / banded medians (1024-seg line)
#   fig5_batch_amortization         sequential / batched factorizations
#                                   in the k=64 Monte-Carlo campaign
#
# Each scalar is gated against a configurable floor (exit 1 below it):
#
#   FIG5_SPEEDUP_FLOOR         cached-LU speedup floor   (default 3.0)
#   FIG5_BANDED_SPEEDUP_FLOOR  banded speedup floor      (default 3.0)
#   FIG5_AMORTIZATION_FLOOR    batch amortization floor  (default 5.0)

set -euo pipefail

cd "$(dirname "$0")/.."

iterations="${BENCH_ITERATIONS:-15}"
records="$(mktemp)"
trap 'rm -f "$records"' EXIT

for bench in mna_solver trace_engine sched_frontend reliability_codec hierarchy_dispatch march_lowering calib_burst; do
    echo "==> cargo bench -p stt-bench --bench $bench"
    CRITERION_JSON="$records" CRITERION_ITERATIONS="$iterations" \
        cargo bench -p stt-bench --bench "$bench"
done

# The batched Monte-Carlo campaign reports its factorization amortization
# (sequential / batched LU factorizations) in a machine-parsed annotation.
echo "==> cargo run --release -p stt-bench --bin repro -- fig5mc"
amortization="$(cargo run --release -q -p stt-bench --bin repro -- fig5mc \
    | grep -o 'factorization_amortization=[0-9.]*' | cut -d= -f2)"
echo "    factorization amortization: ${amortization}x"

awk -v iterations="$iterations" -v amortization="$amortization" '
    BEGIN { count = 0 }
    {
        line = $0
        sub(/^\{/, "", line); sub(/\}$/, "", line)
        # Pull out the id and median for the headline computations.
        id = $0
        sub(/.*"id": "/, "", id); sub(/".*/, "", id)
        median = $0
        sub(/.*"median_s": /, "", median); sub(/[,}].*/, "", median)
        medians[id] = median + 0
        # Benches declaring Throughput::Elements carry an "elements"
        # field; derive the throughput each median implies so the
        # committed baseline reads in Mtxn/s directly.
        if ($0 ~ /"elements": /) {
            elements = $0
            sub(/.*"elements": /, "", elements); sub(/[,}].*/, "", elements)
            if (medians[id] > 0) {
                mtxn[id] = (elements + 0) / medians[id] / 1e6
                line = line sprintf(", \"mtxn_per_s\": %.3f", mtxn[id])
            }
        }
        ids[count] = line
        count++
    }
    END {
        printf "{\n"
        printf "  \"description\": \"Median criterion timings (seconds); see scripts/bench.sh\",\n"
        printf "  \"iterations\": %d,\n", iterations
        fast = medians["transient/fig5_linear_read"]
        slow = medians["transient/fig5_linear_read_restamp"]
        if (fast > 0 && slow > 0) {
            printf "  \"fig5_linear_cached_lu_speedup\": %.2f,\n", slow / fast
        }
        dense = medians["transient/fig5_dense_read"]
        banded = medians["transient/fig5_banded_read"]
        if (dense > 0 && banded > 0) {
            printf "  \"fig5_banded_speedup\": %.2f,\n", dense / banded
        }
        if (amortization + 0 > 0) {
            printf "  \"fig5_batch_amortization\": %.1f,\n", amortization + 0
        }
        # Headline throughput: the FCFS event loop, the number the
        # DESIGN.md S12 Mtxn/s target is stated against.
        if ("sched_frontend/policy/fcfs" in mtxn) {
            printf "  \"sched_fcfs_mtxn_per_s\": %.3f,\n", mtxn["sched_frontend/policy/fcfs"]
        }
        # March-test compile rate: ops/s of lowering the 10n program,
        # the restart cost of every escape-campaign sweep cell.
        if ("march_lowering/lower/March C-" in mtxn) {
            printf "  \"march_lower_mops_per_s\": %.3f,\n", mtxn["march_lowering/lower/March C-"]
        }
        # One tripped recalibration cycle (reference-read burst + beta
        # refit), in microseconds: the lane-occupancy cost of the daemon.
        if (medians["calib/burst_refit"] > 0) {
            printf "  \"calib_burst_us\": %.3f,\n", medians["calib/burst_refit"] * 1e6
        }
        printf "  \"benches\": [\n"
        for (k = 0; k < count; k++) {
            printf "    {%s}%s\n", ids[k], (k < count - 1 ? "," : "")
        }
        printf "  ]\n"
        printf "}\n"
    }
' "$records" > BENCH_MNA.json

echo "wrote BENCH_MNA.json"
grep -o '"fig5_linear_cached_lu_speedup": [0-9.]*' BENCH_MNA.json || true
grep -o '"fig5_banded_speedup": [0-9.]*' BENCH_MNA.json || true
grep -o '"fig5_batch_amortization": [0-9.]*' BENCH_MNA.json || true
grep -o '"sched_fcfs_mtxn_per_s": [0-9.]*' BENCH_MNA.json || true
grep -o '"march_lower_mops_per_s": [0-9.]*' BENCH_MNA.json || true

# Floor gates: the headline scalars must not regress below the configured
# floors. Shared boxes swing medians, so the defaults sit well under the
# committed baselines while still catching a lost fast path outright.
gate() {
    local name="$1" floor="$2"
    local value
    value="$(grep -o "\"$name\": [0-9.]*" BENCH_MNA.json | awk '{print $2}' || true)"
    if [ -z "$value" ]; then
        echo "FAIL: $name missing from BENCH_MNA.json"
        exit 1
    fi
    awk -v value="$value" -v floor="$floor" -v name="$name" 'BEGIN {
        if (value + 0 < floor + 0) {
            printf "FAIL: %s = %.2f below floor %.2f\n", name, value, floor
            exit 1
        }
        printf "    %s = %.2f (floor %.2f) ok\n", name, value, floor
    }'
}
gate fig5_linear_cached_lu_speedup "${FIG5_SPEEDUP_FLOOR:-3.0}"
gate fig5_banded_speedup "${FIG5_BANDED_SPEEDUP_FLOOR:-3.0}"
gate fig5_batch_amortization "${FIG5_AMORTIZATION_FLOOR:-5.0}"
